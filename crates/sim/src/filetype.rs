//! Workload characterization: the Table 2 file-type parameters.
//!
//! "The workload is characterized in terms of file types and their reference
//! patterns. A simulation configuration may consist of any number of file
//! types. Each file type defines the size characteristics, access patterns,
//! and growth characteristics of a set of files."

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// The operations a user event may perform (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read `rw size ± deviation` bytes.
    Read,
    /// Overwrite `rw size ± deviation` bytes in place.
    Write,
    /// Grow the file by `rw size ± deviation` bytes.
    Extend,
    /// Shrink the file by `truncate size` bytes.
    Truncate,
    /// Delete the file (it is immediately re-created; see the engine docs).
    Delete,
}

/// One file type: the paper's Table 2, parameter for parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileTypeConfig {
    /// Human-readable label ("relations", "small files", …).
    pub name: String,
    /// "Number of Files": how many files of this type are created.
    pub num_files: u64,
    /// "Number of Users": how many parallel events access this type.
    pub num_users: u32,
    /// "Process Time": mean milliseconds between successive requests from a
    /// single user (exponentially distributed).
    pub process_time_ms: f64,
    /// "Hit Frequency": milliseconds between requests from different users;
    /// start times are uniform in `[0, num_users × hit_frequency)`.
    pub hit_frequency_ms: f64,
    /// "Read/Write Size": mean bytes per read/write/extend operation.
    pub rw_size_bytes: u64,
    /// "RW Deviation": standard deviation of the above.
    pub rw_deviation_bytes: u64,
    /// "Allocation Size": mean extent size hint for extent-based systems.
    pub allocation_size_bytes: u64,
    /// "Truncate Size": bytes deallocated by a truncate request.
    pub truncate_size_bytes: u64,
    /// "Initial Size": mean file size at initialization.
    pub initial_size_bytes: u64,
    /// "Initial Deviation": spread of the (uniform) initial size.
    pub initial_deviation_bytes: u64,
    /// "Read Ratio": percent of operations that are reads.
    pub read_pct: f64,
    /// "Write Ratio": percent of operations that are writes.
    pub write_pct: f64,
    /// "Extend Ratio": percent of operations that are extends.
    pub extend_pct: f64,
    /// Percent of operations that are deallocations (the remainder of the
    /// three ratios above).
    pub deallocate_pct: f64,
    /// "Delete Ratio": of the deallocate operations, the fraction that are
    /// whole-file deletes (the rest are truncates).
    pub delete_fraction: f64,
    /// Whether reads/writes walk the file sequentially (supercomputer-style
    /// bursts) or land at uniformly random offsets (transaction-style).
    pub sequential_access: bool,
    /// Align random offsets down to a multiple of the mean r/w size —
    /// database-style page access. Without it, a random 16 KB read straddles
    /// a stripe-unit boundary most of the time and pays two seeks.
    pub page_aligned: bool,
}

impl FileTypeConfig {
    /// Validates ratio arithmetic and basic sanity.
    pub fn validate(&self) -> Result<(), String> {
        let total = self.read_pct + self.write_pct + self.extend_pct + self.deallocate_pct;
        if (total - 100.0).abs() > 1e-6 {
            return Err(format!("{}: operation ratios sum to {total}, expected 100", self.name));
        }
        for (label, v) in [
            ("read", self.read_pct),
            ("write", self.write_pct),
            ("extend", self.extend_pct),
            ("deallocate", self.deallocate_pct),
        ] {
            if !(0.0..=100.0).contains(&v) {
                return Err(format!("{}: {label} ratio {v} out of range", self.name));
            }
        }
        if !(0.0..=1.0).contains(&self.delete_fraction) {
            return Err(format!("{}: delete fraction out of range", self.name));
        }
        if self.num_files == 0 || self.num_users == 0 {
            return Err(format!("{}: needs at least one file and one user", self.name));
        }
        if self.rw_size_bytes == 0 {
            return Err(format!("{}: zero rw size", self.name));
        }
        Ok(())
    }

    /// Draws an operation according to the full ratio mix.
    pub fn choose_op(&self, rng: &mut SimRng) -> OpKind {
        let roll = rng.percent();
        if roll < self.read_pct {
            OpKind::Read
        } else if roll < self.read_pct + self.write_pct {
            OpKind::Write
        } else if roll < self.read_pct + self.write_pct + self.extend_pct {
            OpKind::Extend
        } else {
            self.choose_deallocate(rng)
        }
    }

    /// Draws an operation for the allocation test: "only the extend,
    /// truncate, delete, and create operations in the proportion as
    /// expressed by the file type parameters" — i.e. the read/write share is
    /// dropped and the remaining ratios renormalized.
    pub fn choose_allocation_op(&self, rng: &mut SimRng) -> OpKind {
        let total = self.extend_pct + self.deallocate_pct;
        if total <= 0.0 {
            return OpKind::Extend;
        }
        let roll = rng.uniform_f64(0.0, total);
        if roll < self.extend_pct {
            OpKind::Extend
        } else {
            self.choose_deallocate(rng)
        }
    }

    /// Draws whole-file read vs write for the sequential test ("only read
    /// and write operations are performed"), renormalizing the two ratios.
    pub fn choose_sequential_op(&self, rng: &mut SimRng) -> OpKind {
        let total = self.read_pct + self.write_pct;
        if total <= 0.0 {
            return OpKind::Read;
        }
        if rng.uniform_f64(0.0, total) < self.read_pct {
            OpKind::Read
        } else {
            OpKind::Write
        }
    }

    fn choose_deallocate(&self, rng: &mut SimRng) -> OpKind {
        if rng.uniform_f64(0.0, 1.0) < self.delete_fraction {
            OpKind::Delete
        } else {
            OpKind::Truncate
        }
    }

    /// A read/write/extend size draw in bytes (normal, ≥ 1).
    pub fn sample_rw_bytes(&self, rng: &mut SimRng) -> u64 {
        rng.size_normal(self.rw_size_bytes, self.rw_deviation_bytes, 1)
    }

    /// An initial-size draw in bytes (uniform, ≥ 1).
    pub fn sample_initial_bytes(&self, rng: &mut SimRng) -> u64 {
        rng.size_uniform(self.initial_size_bytes, self.initial_deviation_bytes, 1)
    }

    /// The `users_1e6` scaling family: `num_users` parallel event streams
    /// over a fixed 512-file population of small (64 KB) files.
    ///
    /// The think time is fixed (3 s) and the start spread is compressed to
    /// one think time, so a run performs on the order of `num_users`
    /// operations per measured window while holding ~`num_users` events
    /// pending — the event queue, not the disk arithmetic, is the
    /// structure under measurement as the rung count climbs toward 1e6.
    pub fn many_users(num_users: u32) -> Self {
        FileTypeConfig {
            name: format!("users-{num_users}"),
            num_files: 512,
            num_users: num_users.max(1),
            process_time_ms: 3000.0,
            hit_frequency_ms: 3000.0 / f64::from(num_users.max(1)),
            initial_size_bytes: 64 * 1024,
            initial_deviation_bytes: 16 * 1024,
            ..FileTypeConfig::default()
        }
    }
}

/// A builder-style default useful in tests and examples: a single generic
/// file type with a balanced mix.
impl Default for FileTypeConfig {
    fn default() -> Self {
        FileTypeConfig {
            name: "generic".into(),
            num_files: 16,
            num_users: 4,
            process_time_ms: 50.0,
            hit_frequency_ms: 25.0,
            rw_size_bytes: 8 * 1024,
            rw_deviation_bytes: 2 * 1024,
            allocation_size_bytes: 8 * 1024,
            truncate_size_bytes: 8 * 1024,
            initial_size_bytes: 64 * 1024,
            initial_deviation_bytes: 16 * 1024,
            read_pct: 60.0,
            write_pct: 20.0,
            extend_pct: 15.0,
            deallocate_pct: 5.0,
            delete_fraction: 0.5,
            sequential_access: false,
            page_aligned: false,
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // deliberate mutate-one-field style
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        FileTypeConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_ratios() {
        let mut t = FileTypeConfig::default();
        t.read_pct = 90.0; // now sums to 130
        assert!(t.validate().is_err());
        let mut t = FileTypeConfig::default();
        t.delete_fraction = 1.5;
        assert!(t.validate().is_err());
        let mut t = FileTypeConfig::default();
        t.num_files = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn op_mix_matches_ratios() {
        let t = FileTypeConfig::default();
        let mut rng = SimRng::new(12);
        let n = 50_000;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..n {
            *counts.entry(t.choose_op(&mut rng)).or_insert(0u32) += 1;
        }
        let pct = |k: OpKind| 100.0 * f64::from(counts[&k]) / n as f64;
        assert!((pct(OpKind::Read) - 60.0).abs() < 1.5);
        assert!((pct(OpKind::Write) - 20.0).abs() < 1.5);
        assert!((pct(OpKind::Extend) - 15.0).abs() < 1.5);
        let dealloc = pct(OpKind::Delete) + pct(OpKind::Truncate);
        assert!((dealloc - 5.0).abs() < 1.0);
    }

    #[test]
    fn allocation_mix_drops_reads_and_writes() {
        let t = FileTypeConfig::default();
        let mut rng = SimRng::new(13);
        for _ in 0..1000 {
            let op = t.choose_allocation_op(&mut rng);
            assert!(!matches!(op, OpKind::Read | OpKind::Write));
        }
    }

    #[test]
    fn sequential_mix_is_reads_and_writes_only() {
        let t = FileTypeConfig::default();
        let mut rng = SimRng::new(14);
        let mut reads = 0;
        let n = 20_000;
        for _ in 0..n {
            match t.choose_sequential_op(&mut rng) {
                OpKind::Read => reads += 1,
                OpKind::Write => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        // 60:20 ratio renormalized → 75 % reads.
        let pct = 100.0 * f64::from(reads) / f64::from(n);
        assert!((pct - 75.0).abs() < 1.5, "{pct}");
    }

    #[test]
    fn degenerate_mixes_have_fallbacks() {
        let mut t = FileTypeConfig::default();
        t.read_pct = 0.0;
        t.write_pct = 0.0;
        t.extend_pct = 0.0;
        t.deallocate_pct = 100.0;
        let mut rng = SimRng::new(15);
        assert!(matches!(t.choose_sequential_op(&mut rng), OpKind::Read));
        let mut t2 = FileTypeConfig::default();
        t2.extend_pct = 0.0;
        t2.deallocate_pct = 0.0;
        t2.read_pct = 80.0;
        t2.write_pct = 20.0;
        assert!(matches!(t2.choose_allocation_op(&mut rng), OpKind::Extend));
    }

    #[test]
    fn serde_round_trip() {
        let t = FileTypeConfig::default();
        let json = serde_json::to_string(&t).unwrap();
        let back: FileTypeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
