//! Deterministic random-variate generation.
//!
//! The paper's simulator needs three distributions: uniform (event start
//! times, file/offset selection, initial file sizes), normal (read/write
//! sizes, extent-size ranges), and exponential (think time between a user's
//! requests). They are implemented here on top of `rand`'s uniform source —
//! Box–Muller for the normal, inverse CDF for the exponential — so a single
//! `u64` seed reproduces an entire simulation run.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Seeded random-variate source for one simulation.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// The construction seed, kept so [`SimRng::fork_stream`] can derive
    /// child streams that depend only on `(seed, shard_id)` — never on how
    /// many draws the parent has made.
    seed: u64,
}

/// One round of the splitmix64 output function — the standard seeding
/// finalizer (Steele et al., "Fast splittable pseudorandom number
/// generators"). Full-avalanche, so adjacent inputs give uncorrelated
/// outputs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed), seed }
    }

    /// Derives an independent generator (for handing a sub-component its
    /// own stream without correlating draws). Consumes one draw from this
    /// stream; for a derivation that does not, see [`SimRng::fork_stream`].
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.random::<u64>())
    }

    /// Derives the shard-`shard_id` child stream without consuming any
    /// draws from this generator.
    ///
    /// The child seed is a splitmix64-style mix of the *construction* seed
    /// and the shard id, so the stream for a given `(seed, shard_id)` pair
    /// is stable regardless of the total shard count and of how many draws
    /// the parent has already made. `shard_id + 1` keeps shard 0 from
    /// collapsing onto the root seed's own mixing orbit: no fork stream
    /// shares a seed (and hence a prefix) with the root stream.
    pub fn fork_stream(&self, shard_id: u64) -> SimRng {
        let child = splitmix64(self.seed ^ splitmix64(shard_id.wrapping_add(1)));
        SimRng::new(child)
    }

    /// Checkpoint snapshot: the construction seed plus the generator's raw
    /// 256-bit state. Together they reproduce both future draws *and*
    /// future [`SimRng::fork_stream`] derivations exactly.
    pub fn checkpoint_state(&self) -> (u64, [u64; 4]) {
        (self.seed, self.inner.state())
    }

    /// Rebuilds a generator from a [`SimRng::checkpoint_state`] snapshot.
    /// The all-zero xoshiro state is unreachable from any seed and would
    /// emit zeros forever, so a snapshot claiming it is rejected as
    /// corrupt.
    pub fn from_checkpoint_state(seed: u64, state: [u64; 4]) -> Result<SimRng, String> {
        if state == [0u64; 4] {
            return Err("rng snapshot has the unreachable all-zero state".into());
        }
        Ok(SimRng { inner: SmallRng::from_state(state), seed })
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.random_range(lo..=hi)
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// A percentage draw in `[0, 100)`, for ratio-based choices.
    pub fn percent(&mut self) -> f64 {
        self.uniform_f64(0.0, 100.0)
    }

    /// Normal variate via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let u1: f64 = self.inner.random_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Exponential variate with the given mean (inverse CDF).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.random_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// A size draw: Normal(mean, dev) clamped to at least `min` (sizes must
    /// stay positive; Table 2's deviations are small relative to means, so
    /// clamping barely distorts the distribution).
    pub fn size_normal(&mut self, mean: u64, dev: u64, min: u64) -> u64 {
        let v = self.normal(mean as f64, dev as f64).round();
        (v.max(min as f64)) as u64
    }

    /// A size draw: Uniform(mean − dev, mean + dev), clamped to ≥ `min` —
    /// the paper's initial-file-size distribution ("a size is selected from
    /// a uniform distribution with mean equal to initial size and deviation
    /// of initial deviation").
    pub fn size_uniform(&mut self, mean: u64, dev: u64, min: u64) -> u64 {
        let lo = mean.saturating_sub(dev);
        let hi = mean.saturating_add(dev);
        self.uniform_u64(lo.max(min), hi.max(min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn forks_are_decorrelated_but_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.uniform_u64(0, u64::MAX - 1), fb.uniform_u64(0, u64::MAX - 1));
        assert_ne!(
            (0..8).map(|_| fa.uniform_u64(0, 100)).collect::<Vec<_>>(),
            (0..8).map(|_| a.uniform_u64(0, 100)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fork_stream_is_stable_across_shard_counts_and_parent_draws() {
        // The stream for (seed, shard_id) must not depend on how many
        // shards exist in total, nor on draws made from the parent.
        let sample = |rng: &SimRng, id: u64| {
            let mut f = rng.fork_stream(id);
            (0..16).map(|_| f.uniform_u64(0, u64::MAX - 1)).collect::<Vec<_>>()
        };
        let mut a = SimRng::new(1991);
        let before = sample(&a, 3);
        for _ in 0..57 {
            a.uniform_u64(0, 100);
        }
        assert_eq!(before, sample(&a, 3), "parent draws must not perturb fork streams");
        // "Run with 4 shards" and "run with 8 shards" derive shard 3
        // identically: nothing but (seed, id) goes into the derivation.
        let b = SimRng::new(1991);
        assert_eq!(before, sample(&b, 3));
        // Distinct shards get distinct streams.
        assert_ne!(sample(&b, 0), sample(&b, 1));
    }

    #[test]
    fn fork_streams_never_rejoin_the_root_stream() {
        // No fork stream may share a prefix with the root stream: the
        // derived seeds must all differ from the root seed and from each
        // other (equal SmallRng seeds are the only way to share a prefix).
        let root = SimRng::new(0x5EED);
        let mut r = SimRng::new(0x5EED);
        let root_prefix: Vec<u64> =
            (0..64).map(|_| r.uniform_u64(0, u64::MAX - 1)).collect();
        for id in 0..64u64 {
            let mut f = root.fork_stream(id);
            let fork_prefix: Vec<u64> =
                (0..64).map(|_| f.uniform_u64(0, u64::MAX - 1)).collect();
            assert_ne!(root_prefix, fork_prefix, "fork {id} collided with the root stream");
        }
        // Degenerate seeds (0, MAX) still separate cleanly.
        for seed in [0u64, u64::MAX] {
            let parent = SimRng::new(seed);
            let mut p = SimRng::new(seed);
            let proot: Vec<u64> = (0..32).map(|_| p.uniform_u64(0, u64::MAX - 1)).collect();
            let mut f = parent.fork_stream(0);
            let pfork: Vec<u64> = (0..32).map(|_| f.uniform_u64(0, u64::MAX - 1)).collect();
            assert_ne!(proot, pfork);
        }
    }

    #[test]
    fn checkpoint_state_resumes_the_exact_stream() {
        let mut r = SimRng::new(0xC0FFEE);
        for _ in 0..37 {
            r.uniform_u64(0, 1_000);
        }
        let (seed, state) = r.checkpoint_state();
        let mut restored = SimRng::from_checkpoint_state(seed, state).unwrap();
        for _ in 0..64 {
            assert_eq!(r.uniform_u64(0, u64::MAX - 1), restored.uniform_u64(0, u64::MAX - 1));
        }
        // fork_stream depends only on the construction seed, which the
        // snapshot carries.
        let mut fa = r.fork_stream(5);
        let mut fb = restored.fork_stream(5);
        assert_eq!(fa.uniform_u64(0, u64::MAX - 1), fb.uniform_u64(0, u64::MAX - 1));
        assert!(SimRng::from_checkpoint_state(1, [0; 4]).is_err(), "all-zero state rejected");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::new(4);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(50.0, 5.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 5.0).abs() < 0.2, "sd {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(30.0)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn zero_deviation_is_exact() {
        let mut r = SimRng::new(6);
        assert_eq!(r.normal(42.0, 0.0), 42.0);
        assert_eq!(r.size_normal(42, 0, 1), 42);
        assert_eq!(r.size_uniform(42, 0, 1), 42);
    }

    #[test]
    fn size_draws_respect_min() {
        let mut r = SimRng::new(8);
        for _ in 0..1000 {
            assert!(r.size_normal(2, 10, 1) >= 1);
            assert!(r.size_uniform(2, 10, 1) >= 1);
        }
    }

    #[test]
    fn uniform_bounds_inclusive_exclusive() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let v = r.uniform_u64(3, 5);
            assert!((3..=5).contains(&v));
            let f = r.uniform_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
        }
        assert_eq!(r.uniform_u64(7, 7), 7);
        assert_eq!(r.uniform_f64(3.0, 3.0), 3.0);
    }
}
