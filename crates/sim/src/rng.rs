//! Deterministic random-variate generation.
//!
//! The paper's simulator needs three distributions: uniform (event start
//! times, file/offset selection, initial file sizes), normal (read/write
//! sizes, extent-size ranges), and exponential (think time between a user's
//! requests). They are implemented here on top of `rand`'s uniform source —
//! Box–Muller for the normal, inverse CDF for the exponential — so a single
//! `u64` seed reproduces an entire simulation run.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Seeded random-variate source for one simulation.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent generator (for handing a sub-component its
    /// own stream without correlating draws).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.random::<u64>())
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.random_range(lo..=hi)
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// A percentage draw in `[0, 100)`, for ratio-based choices.
    pub fn percent(&mut self) -> f64 {
        self.uniform_f64(0.0, 100.0)
    }

    /// Normal variate via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let u1: f64 = self.inner.random_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Exponential variate with the given mean (inverse CDF).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.random_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// A size draw: Normal(mean, dev) clamped to at least `min` (sizes must
    /// stay positive; Table 2's deviations are small relative to means, so
    /// clamping barely distorts the distribution).
    pub fn size_normal(&mut self, mean: u64, dev: u64, min: u64) -> u64 {
        let v = self.normal(mean as f64, dev as f64).round();
        (v.max(min as f64)) as u64
    }

    /// A size draw: Uniform(mean − dev, mean + dev), clamped to ≥ `min` —
    /// the paper's initial-file-size distribution ("a size is selected from
    /// a uniform distribution with mean equal to initial size and deviation
    /// of initial deviation").
    pub fn size_uniform(&mut self, mean: u64, dev: u64, min: u64) -> u64 {
        let lo = mean.saturating_sub(dev);
        let hi = mean.saturating_add(dev);
        self.uniform_u64(lo.max(min), hi.max(min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn forks_are_decorrelated_but_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.uniform_u64(0, u64::MAX - 1), fb.uniform_u64(0, u64::MAX - 1));
        assert_ne!(
            (0..8).map(|_| fa.uniform_u64(0, 100)).collect::<Vec<_>>(),
            (0..8).map(|_| a.uniform_u64(0, 100)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::new(4);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(50.0, 5.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 5.0).abs() < 0.2, "sd {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(30.0)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn zero_deviation_is_exact() {
        let mut r = SimRng::new(6);
        assert_eq!(r.normal(42.0, 0.0), 42.0);
        assert_eq!(r.size_normal(42, 0, 1), 42);
        assert_eq!(r.size_uniform(42, 0, 1), 42);
    }

    #[test]
    fn size_draws_respect_min() {
        let mut r = SimRng::new(8);
        for _ in 0..1000 {
            assert!(r.size_normal(2, 10, 1) >= 1);
            assert!(r.size_uniform(2, 10, 1) >= 1);
        }
    }

    #[test]
    fn uniform_bounds_inclusive_exclusive() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let v = r.uniform_u64(3, 5);
            assert!((3..=5).contains(&v));
            let f = r.uniform_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
        }
        assert_eq!(r.uniform_u64(7, 7), 7);
        assert_eq!(r.uniform_f64(3.0, 3.0), 3.0);
    }
}
