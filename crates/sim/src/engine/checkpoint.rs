//! Mid-run checkpointing for the application performance test.
//!
//! A million-user rung can run for hours; a preempted worker losing the
//! whole rung makes the distributed sweep's retry story expensive. This
//! module lets the *serial* measurement loop persist its complete dynamic
//! state every N steps and resume from the latest snapshot producing
//! **bit-identical** results — the same `PerfReport`, the same latency
//! histogram, the same store bytes — as an uninterrupted run.
//!
//! Only the serial loop checkpoints: the pipelined loop is already proven
//! bit-identical to it by construction (see the `shard` module docs), so a
//! resumed serial run stands in for any worker count.
//!
//! The snapshot is a single JSON object (the vendored writer prints floats
//! via Rust's shortest round-trip `Display`, so every `f64` survives the
//! text round trip exactly) written atomically: a `.tmp` sibling is
//! written in full, then renamed over the checkpoint path. A kill at any
//! instant therefore leaves either the previous checkpoint or the new one,
//! never a torn file.
//!
//! Restores are validation-first at every layer: the file tables, latency
//! reservoir, policy, free map, and disk snapshots each re-check their own
//! invariants (space conservation, selection-index consistency, monotone
//! queues) and reject corrupt state with an error instead of quietly
//! diverging later. A snapshot whose config fingerprint does not match the
//! resuming run is rejected outright.

use super::{Mode, Simulation};
use crate::hist::LatencyReservoir;
use crate::measure::ThroughputMeter;
use crate::metrics::EngineCounters;
use crate::results::PerfReport;
use crate::rng::SimRng;
use crate::shard::ShardedEventQueue;
use crate::state::{FileTable, UserTable};
use readopt_disk::SimTime;
use serde::{de_field, Serialize, Value};
use std::path::PathBuf;

/// Snapshot format version; bumped on any layout change so an old binary
/// never misreads a new snapshot (or vice versa).
const CHECKPOINT_VERSION: u64 = 1;

/// Exit status the [`CheckpointSpec::kill_after`] hook terminates with,
/// so harness tests can distinguish the deliberate mid-run kill from a
/// crash.
pub const CHECKPOINT_KILL_EXIT: i32 = 86;

/// Where and how often a checkpointed run persists its state.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file path. A `.tmp` sibling is used for the atomic
    /// write-then-rename; the file is removed when the run completes.
    pub path: PathBuf,
    /// Steps between checkpoint writes; 0 disables periodic writes (the
    /// run still resumes from `path` if a snapshot is already there).
    pub every_steps: u64,
    /// Test hook: terminate the process (status
    /// [`CHECKPOINT_KILL_EXIT`]) immediately after writing the N-th
    /// checkpoint of this process. `None` in production.
    pub kill_after: Option<u64>,
    /// Fingerprint of the generating configuration — callers use the
    /// config's canonical JSON. A snapshot written under a different
    /// fingerprint is rejected instead of resumed.
    pub config_fingerprint: String,
}

/// The loop-frame values that live outside `Simulation` during a
/// measurement: what a resume must hand back to the loop.
struct ResumeFrame {
    steps: u64,
    ops_before: u64,
    disk_full_before: u64,
    meter: ThroughputMeter,
}

impl Simulation {
    /// §3's application performance test with mid-run checkpointing: runs
    /// the serial measurement loop, persisting a full-state snapshot to
    /// `spec.path` every `spec.every_steps` steps. If a snapshot is
    /// already present (a previous process was killed mid-run), the run
    /// resumes from it and produces bit-identical results to an
    /// uninterrupted run; on success the snapshot is removed.
    ///
    /// `self` must be freshly built via [`Simulation::new`] from the same
    /// config and seed as the interrupted run — the snapshot carries only
    /// dynamic state, and a config mismatch is caught by the fingerprint.
    /// On `Err` the simulation may be partially restored and must be
    /// discarded.
    pub fn run_application_test_checkpointed(
        &mut self,
        spec: &CheckpointSpec,
    ) -> Result<PerfReport, String> {
        match self.run_checkpointed_impl(spec, None)? {
            Some(report) => Ok(report),
            None => Err("internal: checkpointed run paused without a pause request".into()),
        }
    }

    /// Test hook: like [`Self::run_application_test_checkpointed`] but
    /// returns `Ok(None)` after writing `pause_after` checkpoints instead
    /// of killing the process, leaving the snapshot on disk for a resume.
    #[cfg(test)]
    pub(crate) fn run_checkpointed_until_pause(
        &mut self,
        spec: &CheckpointSpec,
        pause_after: u64,
    ) -> Result<Option<PerfReport>, String> {
        self.run_checkpointed_impl(spec, Some(pause_after))
    }

    fn run_checkpointed_impl(
        &mut self,
        spec: &CheckpointSpec,
        pause_after: Option<u64>,
    ) -> Result<Option<PerfReport>, String> {
        let snapshot = match std::fs::read_to_string(&spec.path) {
            Ok(text) => Some(serde_json::from_str::<Value>(&text).map_err(|e| {
                format!("corrupt checkpoint {}: {e}", spec.path.display())
            })?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("cannot read checkpoint {}: {e}", spec.path.display())),
        };
        let frame = match snapshot {
            Some(v) => self
                .restore_checkpoint(&v, spec)
                .map_err(|e| format!("cannot resume from {}: {e}", spec.path.display()))?,
            None => {
                // The uninterrupted preamble, exactly as `run_perf` does it.
                self.fill_to_lower_bound();
                self.clock = self.clock.max(self.storage.next_idle());
                self.schedule_users();
                let disk_full_before = self.disk_full_events;
                let ops_before = self.ops;
                self.reset_latencies();
                let meter = ThroughputMeter::new(self.clock, self.interval);
                ResumeFrame { steps: 0, ops_before, disk_full_before, meter }
            }
        };
        let ResumeFrame { mut steps, ops_before, disk_full_before, mut meter } = frame;
        // A resumed step count is itself a checkpoint boundary; the
        // sentinel keeps the loop from immediately rewriting it.
        let mut last_checkpoint = steps;
        let mut written_this_process: u64 = 0;

        // The body below is `run_perf_serial` with the checkpoint write
        // spliced in at the loop top, after the stop checks and before the
        // step — i.e. at a point where the snapshot fully determines the
        // rest of the run. Writing a snapshot perturbs nothing: the only
        // state it touches is the event queue (drained and re-queued,
        // which preserves pop order exactly).
        let (stabilized, throughput_pct) = loop {
            let Some(t_next) = self.queue.peek_time() else {
                break (false, 0.0);
            };
            if let Some(pct) = meter.stabilized(
                t_next,
                self.max_bw,
                self.stabilize_window,
                self.stabilize_tolerance_pct,
            ) {
                break (true, pct);
            }
            if meter.complete_intervals(t_next) >= self.max_intervals {
                break (false, meter.recent_mean_pct(t_next, self.max_bw, self.stabilize_window));
            }
            if spec.every_steps > 0
                && steps > 0
                && steps.is_multiple_of(spec.every_steps)
                && steps != last_checkpoint
            {
                self.write_checkpoint(spec, steps, ops_before, disk_full_before, &meter)?;
                last_checkpoint = steps;
                written_this_process += 1;
                if pause_after.is_some_and(|n| written_this_process >= n) {
                    return Ok(None);
                }
                if spec.kill_after.is_some_and(|n| written_this_process >= n) {
                    std::process::exit(CHECKPOINT_KILL_EXIT);
                }
            }
            self.step(Mode::Application, Some(&mut meter));
            steps += 1;
            if steps.is_multiple_of(256) && self.utilization() < self.util_lower - 0.02 {
                self.counters.refill_passes += 1;
                self.fill_to_lower_bound();
            }
        };
        let report =
            self.finish_perf(&meter, stabilized, throughput_pct, ops_before, disk_full_before);
        let _ = std::fs::remove_file(&spec.path);
        Ok(Some(report))
    }

    /// Serializes the complete dynamic state and writes it atomically
    /// (full `.tmp` write, then rename over `spec.path`).
    fn write_checkpoint(
        &mut self,
        spec: &CheckpointSpec,
        steps: u64,
        ops_before: u64,
        disk_full_before: u64,
        meter: &ThroughputMeter,
    ) -> Result<(), String> {
        let snapshot = self.checkpoint_value(spec, steps, ops_before, disk_full_before, meter)?;
        let text = serde_json::to_string(&snapshot).map_err(|e| e.to_string())?;
        let tmp = spec.path.with_extension("tmp");
        std::fs::write(&tmp, text)
            .map_err(|e| format!("cannot write checkpoint {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &spec.path)
            .map_err(|e| format!("cannot publish checkpoint {}: {e}", spec.path.display()))?;
        Ok(())
    }

    fn checkpoint_value(
        &mut self,
        spec: &CheckpointSpec,
        steps: u64,
        ops_before: u64,
        disk_full_before: u64,
        meter: &ThroughputMeter,
    ) -> Result<Value, String> {
        let policy = self.policy.checkpoint_state().ok_or_else(|| {
            format!("the {} policy does not support checkpointing", self.policy.name())
        })?;
        let storage = self
            .storage
            .checkpoint_state()
            .ok_or_else(|| "the storage layout does not support checkpointing".to_string())?;
        let (rng_seed, rng_state) = self.rng.checkpoint_state();
        // Draining is the only way to see the queue's entries; re-queueing
        // them with their original sequence numbers restores the exact
        // same pop order, so the run is unperturbed.
        let (entries, next_seq) = self.queue.drain_entries();
        self.queue
            .restore_entries(&entries, next_seq)
            .map_err(|e| format!("internal: re-queue after checkpoint drain failed: {e}"))?;
        Ok(Value::Object(vec![
            ("version".into(), CHECKPOINT_VERSION.to_value()),
            ("fingerprint".into(), spec.config_fingerprint.to_value()),
            ("steps".into(), steps.to_value()),
            ("ops_before".into(), ops_before.to_value()),
            ("disk_full_before".into(), disk_full_before.to_value()),
            ("meter".into(), meter.to_value()),
            ("clock".into(), self.clock.to_value()),
            ("ops".into(), self.ops.to_value()),
            ("disk_full_events".into(), self.disk_full_events.to_value()),
            ("counters".into(), self.counters.to_value()),
            ("ops_at_counter_reset".into(), self.ops_at_counter_reset.to_value()),
            ("disk_full_at_counter_reset".into(), self.disk_full_at_counter_reset.to_value()),
            ("latencies".into(), self.latencies.to_value()),
            ("dropped_latencies".into(), self.dropped_latencies.to_value()),
            ("hist".into(), self.hist.to_value()),
            ("rng_seed".into(), rng_seed.to_value()),
            ("rng_state".into(), rng_state.to_value()),
            ("queue_entries".into(), entries.to_value()),
            ("queue_next_seq".into(), next_seq.to_value()),
            ("files".into(), self.files.to_value()),
            ("files_by_type".into(), self.files_by_type.to_value()),
            ("users".into(), self.users.to_value()),
            ("policy".into(), policy),
            ("storage".into(), storage),
        ]))
    }

    /// Validates a snapshot and applies it to this freshly built
    /// simulation. Deserialization and cross-field checks all run before
    /// the first field is committed; the policy and storage sub-restores
    /// are themselves validation-first, so an `Err` from any stage leaves
    /// at most a partially restored simulation that the caller discards.
    fn restore_checkpoint(
        &mut self,
        v: &Value,
        spec: &CheckpointSpec,
    ) -> Result<ResumeFrame, String> {
        let err = |e: serde::Error| e.to_string();
        let version: u64 = de_field(v, "version").map_err(err)?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "snapshot version {version} != supported {CHECKPOINT_VERSION}"
            ));
        }
        let fingerprint: String = de_field(v, "fingerprint").map_err(err)?;
        if fingerprint != spec.config_fingerprint {
            return Err("snapshot config fingerprint does not match this run's config".into());
        }
        let steps: u64 = de_field(v, "steps").map_err(err)?;
        let ops_before: u64 = de_field(v, "ops_before").map_err(err)?;
        let disk_full_before: u64 = de_field(v, "disk_full_before").map_err(err)?;
        let meter: ThroughputMeter = de_field(v, "meter").map_err(err)?;
        let clock: SimTime = de_field(v, "clock").map_err(err)?;
        let ops: u64 = de_field(v, "ops").map_err(err)?;
        let disk_full_events: u64 = de_field(v, "disk_full_events").map_err(err)?;
        let counters: EngineCounters = de_field(v, "counters").map_err(err)?;
        let ops_at_counter_reset: u64 = de_field(v, "ops_at_counter_reset").map_err(err)?;
        let disk_full_at_counter_reset: u64 =
            de_field(v, "disk_full_at_counter_reset").map_err(err)?;
        let latencies: Vec<f64> = de_field(v, "latencies").map_err(err)?;
        if latencies.len() > self.latency_sample_cap {
            return Err(format!(
                "{} latency samples exceed the configured cap {}",
                latencies.len(),
                self.latency_sample_cap
            ));
        }
        if latencies.iter().any(|l| !l.is_finite() || *l < 0.0) {
            return Err("non-finite or negative latency sample in snapshot".into());
        }
        let dropped_latencies: u64 = de_field(v, "dropped_latencies").map_err(err)?;
        let hist: LatencyReservoir = de_field(v, "hist").map_err(err)?;
        let rng_seed: u64 = de_field(v, "rng_seed").map_err(err)?;
        let rng_words: Vec<u64> = de_field(v, "rng_state").map_err(err)?;
        let rng_state: [u64; 4] = rng_words
            .try_into()
            .map_err(|w: Vec<u64>| format!("rng state has {} words, expected 4", w.len()))?;
        let rng = SimRng::from_checkpoint_state(rng_seed, rng_state)?;
        let users: UserTable = de_field(v, "users").map_err(err)?;
        if users.type_idx.iter().any(|&t| t as usize >= self.types.len()) {
            return Err("user with out-of-range file-type index in snapshot".into());
        }
        let files: FileTable = de_field(v, "files").map_err(err)?;
        let files_by_type: Vec<Vec<u32>> = de_field(v, "files_by_type").map_err(err)?;
        check_selection_index(&files, &files_by_type, self.types.len())?;
        let entries: Vec<(SimTime, u64, u32)> = de_field(v, "queue_entries").map_err(err)?;
        let next_seq: u64 = de_field(v, "queue_next_seq").map_err(err)?;
        if entries.iter().any(|e| e.2 as usize >= users.type_idx.len()) {
            return Err("queued event names a user outside the user table".into());
        }
        let mut queue = ShardedEventQueue::with_kind(self.shards, self.event_queue);
        queue.restore_entries(&entries, next_seq)?;
        let policy_snap =
            v.get("policy").ok_or_else(|| "missing field `policy`".to_string())?;
        let storage_snap =
            v.get("storage").ok_or_else(|| "missing field `storage`".to_string())?;

        self.storage
            .restore_state(storage_snap)
            .map_err(|e| format!("storage restore: {e}"))?;
        self.policy
            .restore_state(policy_snap)
            .map_err(|e| format!("policy restore: {e}"))?;
        self.files = files;
        self.files_by_type = files_by_type;
        self.users = users;
        self.queue = queue;
        self.rng = rng;
        self.clock = clock;
        self.ops = ops;
        self.disk_full_events = disk_full_events;
        self.counters = counters;
        self.ops_at_counter_reset = ops_at_counter_reset;
        self.disk_full_at_counter_reset = disk_full_at_counter_reset;
        self.latencies = latencies;
        self.dropped_latencies = dropped_latencies;
        self.hist = hist;
        self.planning = false;
        self.pending_span = None;
        Ok(ResumeFrame { steps, ops_before, disk_full_before, meter })
    }
}

/// The restore-side twin of the engine tests' selection-index invariant:
/// `files_by_type` and `pos_in_type` must mirror each other exactly and
/// list precisely the live files, or file selection would diverge from
/// the uninterrupted run (or index out of bounds).
fn check_selection_index(
    files: &FileTable,
    files_by_type: &[Vec<u32>],
    ntypes: usize,
) -> Result<(), String> {
    if files_by_type.len() != ntypes {
        return Err(format!(
            "selection index covers {} file types, config has {ntypes}",
            files_by_type.len()
        ));
    }
    let mut listed = 0usize;
    for (t_idx, idxs) in files_by_type.iter().enumerate() {
        for (pos, &file_idx) in idxs.iter().enumerate() {
            let i = file_idx as usize;
            if i >= files.capacity() {
                return Err(format!("selection index names file slot {i} out of bounds"));
            }
            if !files.live[i] {
                return Err(format!("selection index lists retired file slot {i}"));
            }
            if files.type_idx[i] as usize != t_idx {
                return Err(format!("file slot {i} indexed under the wrong type"));
            }
            if files.pos_in_type[i] as usize != pos {
                return Err(format!("file slot {i} has a stale pos_in_type"));
            }
            listed += 1;
        }
    }
    let live = (0..files.capacity()).filter(|&i| files.live[i]).count();
    if listed != live {
        return Err(format!(
            "selection index lists {listed} files, live population is {live}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::filetype::FileTypeConfig;
    use readopt_alloc::{ExtentConfig, FitStrategy, PolicyConfig};
    use readopt_disk::ArrayConfig;

    /// The engine tests' small/fast configuration, with the extent policy
    /// (the one checkpoint-capable first-party policy).
    fn ckpt_config() -> SimConfig {
        let policy = PolicyConfig::Extent(ExtentConfig {
            range_means_bytes: vec![8 * 1024, 64 * 1024],
            fit: FitStrategy::FirstFit,
            sigma_frac: 0.1,
        });
        let t = FileTypeConfig {
            num_files: 64,
            num_users: 8,
            initial_size_bytes: 256 * 1024,
            initial_deviation_bytes: 64 * 1024,
            ..FileTypeConfig::default()
        };
        let mut c = SimConfig::new(ArrayConfig::scaled(64), policy, vec![t]);
        c.max_intervals = 6;
        c.max_allocation_ops = 3_000_000;
        c
    }

    fn fingerprint(c: &SimConfig) -> String {
        serde_json::to_string(c).unwrap()
    }

    fn tmp_spec(c: &SimConfig, name: &str, every_steps: u64) -> CheckpointSpec {
        let mut path = std::env::temp_dir();
        path.push(format!("readopt-ckpt-{}-{name}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        CheckpointSpec { path, every_steps, kill_after: None, config_fingerprint: fingerprint(c) }
    }

    #[test]
    fn checkpointed_run_matches_the_plain_serial_run() {
        let c = ckpt_config();
        let mut plain = Simulation::new(&c, 42);
        let expected = plain.run_application_test();

        let spec = tmp_spec(&c, "match", 512);
        let mut sim = Simulation::new(&c, 42);
        let got = sim.run_application_test_checkpointed(&spec).unwrap();
        assert_eq!(got, expected, "periodic snapshot writes must not perturb the run");
        assert!(!spec.path.exists(), "snapshot removed after a completed run");
    }

    #[test]
    fn resume_after_pause_is_bit_identical() {
        let c = ckpt_config();
        let mut plain = Simulation::new(&c, 7);
        let expected = plain.run_application_test();
        let expected_hist = plain.latency_hist("application");

        let spec = tmp_spec(&c, "resume", 2_000);
        let mut first = Simulation::new(&c, 7);
        let paused = first.run_checkpointed_until_pause(&spec, 1).unwrap();
        assert!(paused.is_none(), "run should pause at the first checkpoint");
        assert!(spec.path.exists());
        drop(first);

        // A brand-new process would rebuild the simulation from the same
        // config and seed, then resume.
        let mut resumed = Simulation::new(&c, 7);
        let got = resumed.run_application_test_checkpointed(&spec).unwrap();
        assert_eq!(got, expected, "resumed run diverged from the uninterrupted one");
        assert_eq!(resumed.latency_hist("application"), expected_hist);
        assert!(!spec.path.exists());
    }

    #[test]
    fn stale_or_corrupt_checkpoints_are_rejected() {
        let c = ckpt_config();
        let spec = tmp_spec(&c, "reject", 2_000);
        let mut first = Simulation::new(&c, 9);
        assert!(first.run_checkpointed_until_pause(&spec, 1).unwrap().is_none());

        // A snapshot from a different configuration must not resume.
        let stale =
            CheckpointSpec { config_fingerprint: "other-config".into(), ..spec.clone() };
        let mut sim = Simulation::new(&c, 9);
        let err = sim.run_application_test_checkpointed(&stale).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // Garbage bytes must error out, not silently restart the run.
        std::fs::write(&spec.path, b"{definitely not json").unwrap();
        let mut sim = Simulation::new(&c, 9);
        let err = sim.run_application_test_checkpointed(&spec).unwrap_err();
        assert!(err.contains("corrupt checkpoint"), "{err}");
        let _ = std::fs::remove_file(&spec.path);
    }

    #[test]
    fn tampered_snapshots_are_rejected() {
        let c = ckpt_config();
        let spec = tmp_spec(&c, "tamper", 2_000);
        let mut first = Simulation::new(&c, 11);
        assert!(first.run_checkpointed_until_pause(&spec, 1).unwrap().is_none());
        let pristine = std::fs::read_to_string(&spec.path).unwrap();

        let tamper = |field: &str, replacement: Value| -> String {
            let v: Value = serde_json::from_str(&pristine).unwrap();
            let Value::Object(mut pairs) = v else { panic!("snapshot is not an object") };
            for (k, val) in pairs.iter_mut() {
                if k == field {
                    *val = replacement.clone();
                }
            }
            serde_json::to_string(&Value::Object(pairs)).unwrap()
        };

        // The all-zero xoshiro state is unreachable from any seed.
        std::fs::write(&spec.path, tamper("rng_state", vec![0u64; 4].to_value())).unwrap();
        let err = Simulation::new(&c, 11).run_application_test_checkpointed(&spec).unwrap_err();
        assert!(err.contains("all-zero"), "{err}");

        // An empty selection index disagrees with the live population.
        let empty_index: Vec<Vec<u32>> = vec![Vec::new()];
        std::fs::write(&spec.path, tamper("files_by_type", empty_index.to_value())).unwrap();
        let err = Simulation::new(&c, 11).run_application_test_checkpointed(&spec).unwrap_err();
        assert!(err.contains("selection index"), "{err}");

        // The pristine bytes still resume cleanly after all that.
        std::fs::write(&spec.path, &pristine).unwrap();
        let report = Simulation::new(&c, 11).run_application_test_checkpointed(&spec).unwrap();
        assert!(report.operations > 0);
    }
}
