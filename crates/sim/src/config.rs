//! Top-level simulation configuration.

use crate::event::EventQueueKind;
use crate::filetype::FileTypeConfig;
use readopt_alloc::PolicyConfig;
use readopt_disk::{ArrayConfig, SimDuration};
use serde::{Deserialize, Serialize};

/// Everything needed to run one simulation: disk system, allocation policy,
/// workload, and the §3 test parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The disk system (Table 1 defaults via [`ArrayConfig::paper_default`]).
    pub array: ArrayConfig,
    /// The allocation policy under test.
    pub policy: PolicyConfig,
    /// The workload's file types (Table 2 parameters each).
    pub file_types: Vec<FileTypeConfig>,
    /// Lower utilization bound `N` — "how full the disk system should be
    /// before measurements begin" (0.90 in §3).
    pub util_lower: f64,
    /// Upper utilization bound `M` — extends beyond this convert to
    /// truncates (0.95 in §3).
    pub util_upper: f64,
    /// Throughput-measurement interval (10 s in §2.2).
    pub interval: SimDuration,
    /// Stabilization window: this many consecutive intervals must agree
    /// (3 in §2.2).
    pub stabilize_window: usize,
    /// Agreement tolerance between those intervals, in percentage points
    /// (0.1 in §2.2).
    pub stabilize_tolerance_pct: f64,
    /// Hard cap on measured simulated time per test, as a count of
    /// intervals (termination "by a specified number of milliseconds").
    pub max_intervals: usize,
    /// Safety cap on operations for the allocation test.
    pub max_allocation_ops: u64,
    /// Number of event-queue shards (≥ 1). Purely logical: results are
    /// bit-identical at any shard count; raising it only creates more
    /// independent disk-ownership groups for [`shard_workers`] to exploit.
    ///
    /// [`shard_workers`]: SimConfig::shard_workers
    pub shards: usize,
    /// Worker threads servicing disk effects during performance tests.
    /// `0` or `1` keeps execution in-line on the decision thread; higher
    /// values are capped at [`shards`](SimConfig::shards). Execution-only:
    /// never affects results.
    pub shard_workers: usize,
    /// Which structure backs the event queue (heap by default, calendar
    /// for O(1) scheduling at million-user densities). Purely a speed
    /// knob: both backends pop in the identical `(time, seq, user)` order,
    /// so results are bit-identical either way.
    pub event_queue: EventQueueKind,
    /// How many raw per-request latencies the engine retains for exact
    /// percentile computation. Beyond the cap, samples still land in the
    /// bounded latency histogram (which then supplies the percentiles), so
    /// long runs keep correct tails at constant memory.
    pub latency_sample_cap: usize,
}

impl SimConfig {
    /// A configuration with the paper's §3 test parameters.
    pub fn new(array: ArrayConfig, policy: PolicyConfig, file_types: Vec<FileTypeConfig>) -> Self {
        SimConfig {
            array,
            policy,
            file_types,
            util_lower: 0.90,
            util_upper: 0.95,
            interval: SimDuration::from_secs(10.0),
            stabilize_window: 3,
            stabilize_tolerance_pct: 0.1,
            max_intervals: 60,
            max_allocation_ops: 10_000_000,
            shards: 1,
            shard_workers: 0,
            event_queue: EventQueueKind::Heap,
            latency_sample_cap: 200_000,
        }
    }

    /// Validates the composite configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.array.validate()?;
        if self.file_types.is_empty() {
            return Err("workload has no file types".into());
        }
        for t in &self.file_types {
            t.validate()?;
        }
        if !(0.0 < self.util_lower && self.util_lower <= self.util_upper && self.util_upper <= 1.0) {
            return Err(format!(
                "utilization window [{}, {}] is not sane",
                self.util_lower, self.util_upper
            ));
        }
        if self.stabilize_window == 0 || self.max_intervals < self.stabilize_window {
            return Err("interval counts inconsistent".into());
        }
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        if self.latency_sample_cap == 0 {
            return Err("latency_sample_cap must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SimConfig {
        SimConfig::new(
            ArrayConfig::scaled(64),
            PolicyConfig::paper_extent_based(),
            vec![FileTypeConfig::default()],
        )
    }

    #[test]
    fn defaults_match_section_3() {
        let c = config();
        c.validate().unwrap();
        assert_eq!(c.util_lower, 0.90);
        assert_eq!(c.util_upper, 0.95);
        assert_eq!(c.interval, SimDuration::from_secs(10.0));
        assert_eq!(c.stabilize_window, 3);
        assert_eq!(c.stabilize_tolerance_pct, 0.1);
    }

    #[test]
    fn validation_composes() {
        let mut c = config();
        c.util_lower = 0.99;
        c.util_upper = 0.95;
        assert!(c.validate().is_err());
        let mut c = config();
        c.file_types.clear();
        assert!(c.validate().is_err());
        let mut c = config();
        c.file_types[0].read_pct += 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn shard_fields_default_inert_and_validate() {
        let c = config();
        assert_eq!(c.shards, 1, "sharding is opt-in");
        assert_eq!(c.shard_workers, 0, "in-line execution by default");
        let mut c = config();
        c.shards = 0;
        assert!(c.validate().is_err(), "zero shards is rejected");
    }

    #[test]
    fn latency_cap_defaults_and_validates() {
        let c = config();
        assert_eq!(c.latency_sample_cap, 200_000, "paper runs keep 200k exact samples");
        let mut c = config();
        c.latency_sample_cap = 0;
        assert!(c.validate().is_err(), "zero cap would record no latencies at all");
    }

    #[test]
    fn event_queue_defaults_to_heap() {
        let c = config();
        assert_eq!(c.event_queue, EventQueueKind::Heap, "calendar is opt-in");
        let mut c = config();
        c.event_queue = EventQueueKind::Calendar;
        c.validate().unwrap();
    }

    #[test]
    fn serde_round_trip() {
        let mut c = config();
        c.event_queue = EventQueueKind::Calendar;
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
