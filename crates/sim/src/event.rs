//! The event queue (§2.2).
//!
//! "The events are maintained in a heap, sorted by their scheduled time. The
//! simulation runs by selecting the first event from the heap … After
//! completion of an operation, the operation completion time is added to an
//! exponentially distributed value with mean equal to process time and an
//! event is scheduled at that newly calculated time."
//!
//! Ties are broken by a monotone sequence number so runs are deterministic.
//!
//! Two interchangeable backends implement this contract behind
//! [`EventQueueKind`]: the paper's binary heap (O(log n), the reference)
//! and the calendar queue in [`crate::calendar`] (amortized O(1) at
//! million-user densities). Both pop in exactly ascending
//! `(time, seq, user)` order, so the choice is invisible to digests,
//! goldens, and metrics sidecars — pinned by `tests/engine_digest.rs` and
//! the differential battery in `crates/sim/tests/queue_equiv.rs`.

use crate::calendar::CalendarQueue;
use readopt_disk::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies one user (one parallel event stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UserId(pub u32);

/// A scheduled user event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Which user acts.
    pub user: UserId,
}

/// Which scheduling structure backs an [`EventQueue`].
///
/// Selected by `SimConfig::event_queue` / `repro --event-queue`. Both
/// backends are observably identical (same pop order, same results, same
/// sidecar bytes); they differ only in asymptotics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventQueueKind {
    /// Binary min-heap keyed `(time, seq, user)` — the paper's structure
    /// and the reference semantics. O(log n) per operation.
    #[default]
    Heap,
    /// Sliding calendar queue with an overflow heap and an arena-backed
    /// wheel (see [`crate::calendar`]). Amortized O(1) per operation.
    Calendar,
}

/// The two concrete scheduling structures.
#[derive(Debug)]
enum Backend {
    Heap(BinaryHeap<Reverse<(SimTime, u64, u32)>>),
    Calendar(CalendarQueue),
}

/// Min-queue of events ordered by `(time, insertion sequence, user)`,
/// backed by either structure in [`EventQueueKind`].
#[derive(Debug)]
pub struct EventQueue {
    backend: Backend,
    seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// An empty queue on the default (heap) backend.
    pub fn new() -> Self {
        EventQueue::with_kind(EventQueueKind::Heap)
    }

    /// An empty queue on the chosen backend.
    pub fn with_kind(kind: EventQueueKind) -> Self {
        let backend = match kind {
            EventQueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            EventQueueKind::Calendar => Backend::Calendar(CalendarQueue::new()),
        };
        EventQueue { backend, seq: 0 }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> EventQueueKind {
        match self.backend {
            Backend::Heap(_) => EventQueueKind::Heap,
            Backend::Calendar(_) => EventQueueKind::Calendar,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `user` to act at `time`.
    pub fn schedule(&mut self, time: SimTime, user: UserId) {
        let seq = self.seq;
        self.seq += 1;
        self.schedule_with_seq(time, user, seq);
    }

    /// Schedules `user` at `time` under an externally assigned sequence
    /// number. Used by the sharded queue, which stamps one *global*
    /// sequence across all shard-local queues so the k-way merge reproduces
    /// the single-queue tie-break exactly.
    pub fn schedule_with_seq(&mut self, time: SimTime, user: UserId, seq: u64) {
        match &mut self.backend {
            Backend::Heap(h) => h.push(Reverse((time, seq, user.0))),
            Backend::Calendar(c) => c.insert(time, seq, user.0),
        }
    }

    /// The earliest pending event time, if any. `&mut` because the
    /// calendar backend memoizes its bucket-cursor advance while peeking
    /// (observationally pure — the answer never changes).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(h) => h.peek().map(|Reverse((t, _, _))| *t),
            Backend::Calendar(c) => c.peek_time(),
        }
    }

    /// The full ordering key `(time, seq)` of the earliest pending event —
    /// what the sharded queue's merge compares across shard queues.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match &mut self.backend {
            Backend::Heap(h) => h.peek().map(|Reverse((t, s, _))| (*t, *s)),
            Backend::Calendar(c) => c.peek_key(),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|Reverse((time, _, user))| Event { time, user: UserId(user) }),
            Backend::Calendar(c) => c.pop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [EventQueueKind; 2] = [EventQueueKind::Heap, EventQueueKind::Calendar];

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(t(30.0), UserId(3));
            q.schedule(t(10.0), UserId(1));
            q.schedule(t(20.0), UserId(2));
            let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.user.0).collect();
            assert_eq!(order, vec![1, 2, 3], "{kind:?}");
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(t(5.0), UserId(9));
            q.schedule(t(5.0), UserId(4));
            q.schedule(t(5.0), UserId(7));
            let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.user.0).collect();
            assert_eq!(order, vec![9, 4, 7], "FIFO among equal timestamps ({kind:?})");
        }
    }

    #[test]
    fn ties_break_by_time_then_seq_then_user() {
        // Regression: the ordering key is the full (time, seq, user)
        // tuple. The sharded queue stamps external seqs, so equal
        // (time, seq) pairs are reachable — the third field must break
        // them identically on every backend (ascending user), or a
        // backend swap could silently reorder equal-time events.
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule_with_seq(t(5.0), UserId(8), 7);
            q.schedule_with_seq(t(5.0), UserId(2), 7); // exact (time, seq) tie
            q.schedule_with_seq(t(5.0), UserId(5), 3); // lower seq wins first
            q.schedule_with_seq(t(1.0), UserId(9), 99); // earlier time wins all
            let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.user.0).collect();
            assert_eq!(order, vec![9, 5, 2, 8], "time, then seq, then user ({kind:?})");
        }
    }

    #[test]
    fn peek_matches_pop() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.peek_time(), None);
            q.schedule(t(2.0), UserId(0));
            q.schedule(t(1.0), UserId(1));
            assert_eq!(q.peek_time(), Some(t(1.0)), "{kind:?}");
            assert_eq!(q.pop().unwrap().user, UserId(1), "{kind:?}");
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            assert_eq!(q.kind(), kind);
        }
    }
}
