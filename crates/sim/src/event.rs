//! The event heap (§2.2).
//!
//! "The events are maintained in a heap, sorted by their scheduled time. The
//! simulation runs by selecting the first event from the heap … After
//! completion of an operation, the operation completion time is added to an
//! exponentially distributed value with mean equal to process time and an
//! event is scheduled at that newly calculated time."
//!
//! Ties are broken by a monotone sequence number so runs are deterministic.

use readopt_disk::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies one user (one parallel event stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UserId(pub u32);

/// A scheduled user event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Which user acts.
    pub user: UserId,
}

/// Min-heap of events ordered by (time, insertion sequence).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `user` to act at `time`.
    pub fn schedule(&mut self, time: SimTime, user: UserId) {
        self.heap.push(Reverse((time, self.seq, user.0)));
        self.seq += 1;
    }

    /// Schedules `user` at `time` under an externally assigned sequence
    /// number. Used by the sharded queue, which stamps one *global*
    /// sequence across all shard-local heaps so the k-way merge reproduces
    /// the single-queue tie-break exactly.
    pub fn schedule_with_seq(&mut self, time: SimTime, user: UserId, seq: u64) {
        self.heap.push(Reverse((time, seq, user.0)));
    }

    /// The earliest pending event time, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// The full ordering key `(time, seq)` of the earliest pending event —
    /// what the sharded queue's merge compares across shard heaps.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse((t, s, _))| (*t, *s))
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse((time, _, user))| Event { time, user: UserId(user) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30.0), UserId(3));
        q.schedule(t(10.0), UserId(1));
        q.schedule(t(20.0), UserId(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.user.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), UserId(9));
        q.schedule(t(5.0), UserId(4));
        q.schedule(t(5.0), UserId(7));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.user.0).collect();
        assert_eq!(order, vec![9, 4, 7], "FIFO among equal timestamps");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(2.0), UserId(0));
        q.schedule(t(1.0), UserId(1));
        assert_eq!(q.peek_time(), Some(t(1.0)));
        assert_eq!(q.pop().unwrap().user, UserId(1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
