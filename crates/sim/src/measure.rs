//! Throughput measurement and the paper's stabilization rule (§2.2/§3).
//!
//! "The throughput, measured as a percentage of the maximum possible
//! sequential throughput of the disk system, is considered stabilized when
//! the throughput calculation for 3 consecutive 10 second intervals are
//! within .1 % of each other."
//!
//! Bytes are attributed to fixed intervals *pro rata* over each operation's
//! `[start, completion)` span, so a 46-second whole-file read contributes
//! smoothly to five intervals instead of spiking the one it completes in.

use readopt_disk::{SimDuration, SimTime};
use serde::{de_field, Deserialize, Error, Serialize, Value};

/// Interval-bucketed throughput accounting.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    start: SimTime,
    interval: SimDuration,
    /// Bytes attributed per interval, index = interval number.
    buckets: Vec<f64>,
    total_bytes: f64,
    last_span_end: SimTime,
}

impl ThroughputMeter {
    /// Starts measuring at `start` with the given interval length.
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        assert!(!interval.is_zero());
        ThroughputMeter {
            start,
            interval,
            buckets: Vec::new(),
            total_bytes: 0.0,
            last_span_end: start,
        }
    }

    /// Measurement origin.
    pub fn start_time(&self) -> SimTime {
        self.start
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    /// Latest span end recorded.
    pub fn last_span_end(&self) -> SimTime {
        self.last_span_end
    }

    fn bucket_index(&self, t: SimTime) -> usize {
        (t.since(self.start).as_us() / self.interval.as_us()) as usize
    }

    /// Records `bytes` moved over `[span_start, span_end)`, spread linearly.
    pub fn add_span(&mut self, span_start: SimTime, span_end: SimTime, bytes: u64) {
        let span_start = span_start.max(self.start);
        let span_end = span_end.max(span_start);
        self.total_bytes += bytes as f64;
        self.last_span_end = self.last_span_end.max(span_end);
        let last_bucket = self.bucket_index(span_end);
        if self.buckets.len() <= last_bucket {
            self.buckets.resize(last_bucket + 1, 0.0);
        }
        let total_us = span_end.since(span_start).as_us();
        if total_us == 0 {
            // Instantaneous transfer: all bytes to the containing bucket.
            let b = self.bucket_index(span_start);
            self.buckets[b] += bytes as f64;
            return;
        }
        // Walk the buckets the span crosses, attributing proportionally.
        let mut cursor = span_start;
        while cursor < span_end {
            let b = self.bucket_index(cursor);
            let bucket_end = self.start + SimDuration::from_us((b as u64 + 1) * self.interval.as_us());
            let piece_end = bucket_end.min(span_end);
            let piece_us = piece_end.since(cursor).as_us();
            self.buckets[b] += bytes as f64 * piece_us as f64 / total_us as f64;
            cursor = piece_end;
        }
    }

    /// Number of intervals that are *complete* at time `now` (no future
    /// event can add bytes to them, because spans begin at issue time and
    /// events are processed in time order).
    pub fn complete_intervals(&self, now: SimTime) -> usize {
        (now.since(self.start).as_us() / self.interval.as_us()) as usize
    }

    /// Throughput of interval `i` as a percentage of `max_bytes_per_ms`.
    pub fn interval_pct(&self, i: usize, max_bytes_per_ms: f64) -> f64 {
        let bytes = self.buckets.get(i).copied().unwrap_or(0.0);
        100.0 * bytes / (self.interval.as_ms() * max_bytes_per_ms)
    }

    /// Implements the paper's stopping rule: returns the mean throughput of
    /// the last `window` complete intervals when their pairwise spread is
    /// within `tolerance_pct` (percentage points), at time `now`.
    pub fn stabilized(
        &self,
        now: SimTime,
        max_bytes_per_ms: f64,
        window: usize,
        tolerance_pct: f64,
    ) -> Option<f64> {
        let complete = self.complete_intervals(now);
        if complete < window {
            return None;
        }
        let pcts: Vec<f64> = (complete - window..complete)
            .map(|i| self.interval_pct(i, max_bytes_per_ms))
            .collect();
        let lo = pcts.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = pcts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // An all-idle window while transfers are pending elsewhere (e.g.
        // queued behind a backlog) is not a steady state.
        // simlint::allow(r9, "0.0 is an exact sentinel: an idle interval's pct is assigned, never accumulated")
        if hi == 0.0 && self.total_bytes > 0.0 {
            return None;
        }
        // The epsilon absorbs float noise when the spread is exactly at the
        // tolerance (e.g. 10.05 − 9.95 in binary floats).
        if hi - lo <= tolerance_pct + 1e-9 {
            // Accumulate in ascending interval order (r6: no unpinned
            // f64 `sum()`).
            let mut total = 0.0;
            for p in &pcts {
                total += p;
            }
            Some(total / window as f64)
        } else {
            None
        }
    }

    /// Mean throughput (%) of the last `window` complete intervals at `now`
    /// regardless of stabilization — the fallback when the time cap fires.
    pub fn recent_mean_pct(&self, now: SimTime, max_bytes_per_ms: f64, window: usize) -> f64 {
        let complete = self.complete_intervals(now);
        if complete == 0 {
            // Nothing complete: fall back to the overall average so short
            // runs still report something meaningful.
            let elapsed = self.last_span_end.since(self.start).as_ms();
            if elapsed <= 0.0 {
                return 0.0;
            }
            return 100.0 * self.total_bytes / (elapsed * max_bytes_per_ms);
        }
        let lo = complete.saturating_sub(window);
        let n = complete - lo;
        // Accumulate in ascending interval order (r6: no unpinned f64
        // `sum()`).
        let mut total = 0.0;
        for i in lo..complete {
            total += self.interval_pct(i, max_bytes_per_ms);
        }
        total / n as f64
    }
}

impl Serialize for ThroughputMeter {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_string(), self.start.to_value()),
            ("interval".to_string(), self.interval.to_value()),
            ("buckets".to_string(), self.buckets.to_value()),
            ("total_bytes".to_string(), self.total_bytes.to_value()),
            ("last_span_end".to_string(), self.last_span_end.to_value()),
        ])
    }
}

impl Deserialize for ThroughputMeter {
    /// Rebuilds the meter and **validates** the snapshot: a zero interval
    /// would divide by zero on the next `bucket_index`, a `last_span_end`
    /// before `start` breaks the clamp invariant `add_span` maintains, and
    /// non-finite bucket contents would poison every later percentage.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = ThroughputMeter {
            start: de_field(v, "start")?,
            interval: de_field(v, "interval")?,
            buckets: de_field(v, "buckets")?,
            total_bytes: de_field(v, "total_bytes")?,
            last_span_end: de_field(v, "last_span_end")?,
        };
        let corrupt = |why: &str| Error::msg(format!("corrupt meter snapshot: {why}"));
        if m.interval.is_zero() {
            return Err(corrupt("zero interval"));
        }
        if m.last_span_end < m.start {
            return Err(corrupt("last_span_end before start"));
        }
        if !m.total_bytes.is_finite() || m.total_bytes < 0.0 {
            return Err(corrupt("total_bytes not a finite non-negative number"));
        }
        if m.buckets.iter().any(|b| !b.is_finite() || *b < 0.0) {
            return Err(corrupt("bucket bytes not finite non-negative"));
        }
        Ok(m)
    }
}

/// Percentile (nearest-rank) of an unsorted sample set; `q` in `[0, 1]`.
/// Returns 0 for an empty set. Sorts a copy; for several percentiles of the
/// same samples, sort once and use [`percentile_of_sorted_ms`] instead.
pub fn percentile_ms(samples: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted_ms(&sorted, q)
}

/// Percentile (nearest-rank) of an already ascending-sorted sample set;
/// `q` in `[0, 1]`. Returns 0 for an empty set.
pub fn percentile_of_sorted_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "samples not sorted");
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> ThroughputMeter {
        ThroughputMeter::new(SimTime::ZERO, SimDuration::from_secs(10.0))
    }

    #[test]
    fn instantaneous_span_hits_one_bucket() {
        let mut m = meter();
        m.add_span(SimTime::from_ms(500.0), SimTime::from_ms(500.0), 100);
        assert_eq!(m.interval_pct(0, 1.0), 100.0 * 100.0 / 10_000.0);
    }

    #[test]
    fn span_splits_proportionally_across_buckets() {
        let mut m = meter();
        // 5 s .. 15 s: half in bucket 0, half in bucket 1.
        m.add_span(SimTime::from_ms(5_000.0), SimTime::from_ms(15_000.0), 1000);
        assert!((m.interval_pct(0, 1.0) - m.interval_pct(1, 1.0)).abs() < 1e-9);
        assert!((m.total_bytes() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn long_span_smears_over_many_buckets() {
        let mut m = meter();
        // 46 s span covering buckets 0..4.
        m.add_span(SimTime::ZERO, SimTime::from_ms(46_000.0), 46_000);
        for i in 0..4 {
            assert!((m.buckets[i] - 10_000.0).abs() < 1.0, "bucket {i}: {}", m.buckets[i]);
        }
        assert!((m.buckets[4] - 6_000.0).abs() < 1.0);
    }

    #[test]
    fn stabilization_requires_three_close_intervals() {
        let mut m = meter();
        // Interval 0: 1000 bytes, 1: 995, 2: 1005 at max 1 byte/ms →
        // 10 %, 9.95 %, 10.05 % — spread 0.1 → stabilized.
        m.add_span(SimTime::from_ms(1_000.0), SimTime::from_ms(2_000.0), 1000);
        m.add_span(SimTime::from_ms(11_000.0), SimTime::from_ms(12_000.0), 995);
        m.add_span(SimTime::from_ms(21_000.0), SimTime::from_ms(22_000.0), 1005);
        let now = SimTime::from_ms(30_000.0);
        let got = m.stabilized(now, 1.0, 3, 0.1).expect("stable");
        assert!((got - 10.0).abs() < 0.01);
        // Tighter tolerance: not stabilized.
        assert!(m.stabilized(now, 1.0, 3, 0.05).is_none());
        // Not enough complete intervals earlier.
        assert!(m.stabilized(SimTime::from_ms(25_000.0), 1.0, 3, 10.0).is_none());
    }

    #[test]
    fn recent_mean_handles_short_runs() {
        let mut m = meter();
        m.add_span(SimTime::ZERO, SimTime::from_ms(1_000.0), 500);
        // No complete interval yet: overall average 0.5 bytes/ms → 50 % of 1.
        let pct = m.recent_mean_pct(SimTime::from_ms(1_000.0), 1.0, 3);
        assert!((pct - 50.0).abs() < 1e-6);
        // After two complete intervals, averages those.
        m.add_span(SimTime::from_ms(10_000.0), SimTime::from_ms(11_000.0), 2000);
        let pct = m.recent_mean_pct(SimTime::from_ms(20_000.0), 1.0, 3);
        assert!((pct - (5.0 + 20.0) / 2.0 / 10.0 * 10.0 / 2.0).abs() < 10.0); // sanity only
        assert!(pct > 0.0);
    }

    #[test]
    fn idle_window_with_pending_bytes_does_not_stabilize() {
        let mut m = meter();
        // All recorded bytes land far in the future (queued behind a
        // backlog); the first three intervals are empty but the meter must
        // not report a stable 0 %.
        m.add_span(SimTime::from_ms(100_000.0), SimTime::from_ms(110_000.0), 5000);
        assert!(m.stabilized(SimTime::from_ms(35_000.0), 1.0, 3, 0.1).is_none());
        // With genuinely no activity at all, 0 % is a legitimate steady state.
        let empty = meter();
        assert_eq!(empty.stabilized(SimTime::from_ms(35_000.0), 1.0, 3, 0.1), Some(0.0));
    }

    #[test]
    fn checkpoint_roundtrips_and_rejects_corruption() {
        let mut m = meter();
        m.add_span(SimTime::from_ms(3_000.0), SimTime::from_ms(27_000.0), 12_345);
        m.add_span(SimTime::from_ms(500.0), SimTime::from_ms(500.0), 77);
        let v = m.to_value();
        let back = ThroughputMeter::from_value(&v).expect("clean snapshot");
        assert_eq!(back.start_time(), m.start_time());
        assert_eq!(back.last_span_end(), m.last_span_end());
        assert_eq!(back.total_bytes(), m.total_bytes());
        for i in 0..4 {
            assert_eq!(back.interval_pct(i, 1.0), m.interval_pct(i, 1.0), "bucket {i}");
        }

        // Tamper: last_span_end rewound before start.
        let mut bad = v.clone();
        if let Value::Object(pairs) = &mut bad {
            pairs[0].1 = SimTime::from_ms(1e9).to_value();
        }
        assert!(ThroughputMeter::from_value(&bad).is_err(), "span end before start");
        // Tamper: negative bucket contents.
        let mut bad = v;
        if let Value::Object(pairs) = &mut bad {
            pairs[3].1 = (-1.0f64).to_value();
        }
        assert!(ThroughputMeter::from_value(&bad).is_err(), "negative total_bytes");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_ms(&xs, 0.5), 3.0);
        assert_eq!(percentile_ms(&xs, 1.0), 5.0);
        assert_eq!(percentile_ms(&xs, 0.0), 1.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        assert_eq!(percentile_ms(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn spans_before_start_are_clamped() {
        let mut m = ThroughputMeter::new(SimTime::from_ms(10_000.0), SimDuration::from_secs(10.0));
        m.add_span(SimTime::ZERO, SimTime::from_ms(20_000.0), 1000);
        // Only the half after measurement start counts toward buckets, but
        // attribution is proportional to the whole span.
        assert!(m.buckets[0] > 0.0);
        assert_eq!(m.complete_intervals(SimTime::from_ms(20_000.0)), 1);
    }
}
