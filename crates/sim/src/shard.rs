//! Sharded execution of a single simulation point.
//!
//! The serial engine interleaves two kinds of work in one loop: *decisions*
//! (which op a user performs, every RNG draw, every allocator call) and
//! *effects* (servicing the op's per-disk pieces against the disk-arm
//! model). Decisions form an inherently serial stream — each one depends on
//! the allocator and RNG state left by the last — but effects only touch
//! per-disk state, and under plain striping the pieces of one disk never
//! interact with another's. The sharded engine exploits exactly that split:
//!
//! * the decision stream stays on one thread, in the exact serial order
//!   (so every RNG draw and allocator mutation is bit-identical);
//! * each worker thread owns the disks of a disjoint set of shards and
//!   services their pieces in decision order — a subsequence of the serial
//!   per-disk order, so every `Disk`'s f64 state evolves identically;
//! * completions are merged back and committed strictly in decision order,
//!   so the throughput meter, the latency buffer and the event queue see
//!   the same values in the same order as the serial loop.
//!
//! Two pieces of machinery make the merge deterministic:
//!
//! 1. [`ShardedEventQueue`] — `S` shard-local heaps with one *global*
//!    sequence counter. Popping the minimum `(time, seq)` over shard heads
//!    reproduces the single-heap order exactly, including ties, at any
//!    shard count: the tie-break is `(time, shard-owned seq)` where `seq`
//!    is assigned globally in schedule order.
//! 2. The *lookahead window* (the pop rule in the engine's pipelined
//!    loop): an event at time `h` may be decided while effects are still
//!    in flight only if `h ≤ min(tᵢ + thinkᵢ)` over all in-flight events
//!    `i` — the earliest time any pending completion could reschedule its
//!    user. Completions only ever land at `completionᵢ + thinkᵢ ≥ tᵢ +
//!    thinkᵢ`, and an exact tie goes to the already-queued event because
//!    pending reschedules always receive larger global sequence numbers.
//!    The window is tracked as a classic monotone min-deque.

use crate::event::{Event, EventQueue, EventQueueKind, UserId};
use readopt_disk::{Disk, PiecePlan, SimTime};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// `S` shard-local event heaps sharing one global sequence counter.
///
/// Users are partitioned by `user_id mod S`; each shard's heap holds only
/// its own users' events. Because every `schedule` stamps the next *global*
/// sequence number, the minimum `(time, seq)` over shard heads is exactly
/// the entry the single-heap [`EventQueue`] would pop — the merge order is
/// bit-identical at any shard count, ties included.
#[derive(Debug)]
pub struct ShardedEventQueue {
    shards: Vec<EventQueue>,
    seq: u64,
    len: usize,
}

impl ShardedEventQueue {
    /// An empty queue over `nshards ≥ 1` shards on the default (heap)
    /// backend.
    pub fn new(nshards: usize) -> Self {
        ShardedEventQueue::with_kind(nshards, EventQueueKind::Heap)
    }

    /// An empty queue over `nshards ≥ 1` shards, every shard-local queue
    /// on the chosen backend.
    pub fn with_kind(nshards: usize, kind: EventQueueKind) -> Self {
        let nshards = nshards.max(1);
        ShardedEventQueue {
            shards: (0..nshards).map(|_| EventQueue::with_kind(kind)).collect(),
            seq: 0,
            len: 0,
        }
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        user.0 as usize % self.shards.len()
    }

    /// Number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events remain in any shard.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `user` to act at `time` on its owning shard, stamping the
    /// next global sequence number.
    pub fn schedule(&mut self, time: SimTime, user: UserId) {
        let shard = self.shard_of(user);
        self.shards[shard].schedule_with_seq(time, user, self.seq);
        self.seq += 1;
        self.len += 1;
    }

    /// The shard index holding the globally earliest event, if any.
    /// `&mut` because peeking a calendar-backed shard advances its bucket
    /// cursor (observationally pure memoization).
    fn min_shard(&mut self) -> Option<usize> {
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if let Some(key) = shard.peek_key() {
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((i, key));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// The earliest pending event time across all shards, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let i = self.min_shard()?;
        self.shards[i].peek_time()
    }

    /// Removes and returns the globally earliest event (k-way merge pop).
    pub fn pop(&mut self) -> Option<Event> {
        let i = self.min_shard()?;
        let ev = self.shards[i].pop();
        if ev.is_some() {
            self.len -= 1;
        }
        ev
    }

    /// Drains every pending event in global merge order, returning the
    /// `(time, seq, user)` entries plus the global sequence counter — the
    /// checkpoint form of the queue. The calendar backend is not cloneable
    /// (its bucket cursor is lazy), so a checkpoint empties the queue and
    /// the caller immediately rebuilds it via [`Self::restore_entries`].
    pub fn drain_entries(&mut self) -> (Vec<(SimTime, u64, u32)>, u64) {
        let mut out = Vec::with_capacity(self.len);
        while let Some(i) = self.min_shard() {
            let key = self.shards[i].peek_key();
            if let (Some((time, seq)), Some(ev)) = (key, self.shards[i].pop()) {
                self.len -= 1;
                out.push((time, seq, ev.user.0));
            }
        }
        (out, self.seq)
    }

    /// Refills the queue from a [`Self::drain_entries`] snapshot,
    /// preserving each entry's original sequence stamp so the merge order
    /// (ties included) is exactly what it was when the snapshot was taken.
    /// Entries must arrive in strictly ascending `(time, seq)` order (the
    /// drain order) with every stamp below `next_seq`; anything else means
    /// the snapshot is corrupt.
    pub fn restore_entries(
        &mut self,
        entries: &[(SimTime, u64, u32)],
        next_seq: u64,
    ) -> Result<(), String> {
        if !self.is_empty() {
            return Err("restoring into a non-empty event queue".into());
        }
        // Validate everything first: a failed restore must leave the queue
        // untouched, not half-filled.
        let mut prev: Option<(SimTime, u64)> = None;
        for &(time, seq, _) in entries {
            if seq >= next_seq {
                return Err(format!("event seq {seq} at or past the counter {next_seq}"));
            }
            if prev.is_some_and(|p| p >= (time, seq)) {
                return Err(format!("event entries out of merge order at seq {seq}"));
            }
            prev = Some((time, seq));
        }
        for &(time, seq, user) in entries {
            let shard = self.shard_of(UserId(user));
            self.shards[shard].schedule_with_seq(time, UserId(user), seq);
            self.len += 1;
        }
        self.seq = next_seq;
        Ok(())
    }
}

/// One per-disk piece of one decided event, as shipped to a worker.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkItem {
    /// Decision-order id of the owning event (monotone from 0).
    pub event: u64,
    /// The event's decision time (the piece's `ready` time).
    pub ready: SimTime,
    /// The per-disk piece to service.
    pub plan: PiecePlan,
}

/// A worker's per-batch report for one event: the fold of its pieces'
/// service windows on that worker's disks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResultEntry {
    pub event: u64,
    pub begin: SimTime,
    pub end: SimTime,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A poisoned mutex means a worker panicked; the panic is re-raised at
    // join, so the state behind the lock is never used for results.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug, Default)]
struct InboxState {
    batches: VecDeque<Vec<WorkItem>>,
    closed: bool,
}

/// One worker's MPSC work feed: batches of [`WorkItem`]s plus a close flag.
#[derive(Debug, Default)]
pub(crate) struct WorkerInbox {
    state: Mutex<InboxState>,
    ready: Condvar,
}

impl WorkerInbox {
    fn send(&self, batch: Vec<WorkItem>) {
        let mut st = lock_ignore_poison(&self.state);
        st.batches.push_back(batch);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut st = lock_ignore_poison(&self.state);
        st.closed = true;
        self.ready.notify_one();
    }

    /// Blocks for the next batch; `None` once closed and drained.
    fn recv(&self) -> Option<Vec<WorkItem>> {
        let mut st = lock_ignore_poison(&self.state);
        loop {
            if let Some(batch) = st.batches.pop_front() {
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[derive(Debug, Default)]
struct ResultState {
    batches: Vec<Vec<ResultEntry>>,
    /// Set when a worker unwinds, so a blocked decision thread fails fast
    /// with a clear message instead of waiting for reports that will never
    /// arrive.
    dead: bool,
}

/// The workers' shared result channel back to the decision thread.
#[derive(Debug, Default)]
pub(crate) struct ResultChannel {
    state: Mutex<ResultState>,
    ready: Condvar,
}

impl ResultChannel {
    fn post(&self, batch: Vec<ResultEntry>) {
        let mut st = lock_ignore_poison(&self.state);
        st.batches.push(batch);
        self.ready.notify_one();
    }

    fn mark_dead(&self) {
        let mut st = lock_ignore_poison(&self.state);
        st.dead = true;
        self.ready.notify_all();
    }

    /// Takes whatever result batches have arrived, without blocking (an
    /// uncontended miss returns empty).
    pub(crate) fn drain_nonblocking(&self) -> Vec<Vec<ResultEntry>> {
        match self.state.try_lock() {
            Ok(mut st) => std::mem::take(&mut st.batches),
            Err(std::sync::TryLockError::Poisoned(p)) => std::mem::take(&mut p.into_inner().batches),
            Err(std::sync::TryLockError::WouldBlock) => Vec::new(),
        }
    }

    /// Blocks until at least one result batch is available, then takes all.
    ///
    /// # Panics
    ///
    /// If a worker died (unwound) while reports were still owed — the
    /// worker's own panic is re-raised when its scope joins.
    pub(crate) fn drain_blocking(&self) -> Vec<Vec<ResultEntry>> {
        let mut st = lock_ignore_poison(&self.state);
        loop {
            if !st.batches.is_empty() {
                return std::mem::take(&mut st.batches);
            }
            if st.dead {
                // simlint::allow(r3, "unblocks the decision thread so the worker's own panic can surface at join")
                panic!("an effect worker died with reports outstanding");
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The channel bundle connecting the decision thread to its workers.
#[derive(Debug)]
pub(crate) struct EffectChannels {
    pub(crate) inboxes: Vec<WorkerInbox>,
    pub(crate) results: ResultChannel,
}

impl EffectChannels {
    pub(crate) fn new(workers: usize) -> Self {
        EffectChannels {
            inboxes: (0..workers).map(|_| WorkerInbox::default()).collect(),
            results: ResultChannel::default(),
        }
    }

    pub(crate) fn close_all(&self) {
        for inbox in &self.inboxes {
            inbox.close();
        }
    }
}

/// Closes every worker inbox on drop, so workers terminate (and the scope
/// join completes) even when the decision loop unwinds from a panic.
pub(crate) struct CloseOnDrop<'a>(pub(crate) &'a EffectChannels);

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.close_all();
    }
}

/// Marks the result channel dead on drop; a worker thread arms one before
/// entering [`worker_loop`] and disarms it (via [`std::mem::forget`]) on a
/// normal return, so only an unwind trips it.
pub(crate) struct MarkDeadOnPanic<'a>(pub(crate) &'a ResultChannel);

impl Drop for MarkDeadOnPanic<'_> {
    fn drop(&mut self) {
        self.0.mark_dead();
    }
}

/// A worker's loop: service each batch's pieces against the owned disks,
/// folding consecutive same-event pieces into one [`ResultEntry`].
///
/// `owned` is a full-size disk table with `Some` only at indices this
/// worker owns; pieces arrive in decision order, which per disk is exactly
/// the order the serial engine would have serviced them in, with the same
/// `ready` times — so every [`Disk`]'s state trajectory is bit-identical.
pub(crate) fn worker_loop(
    inbox: &WorkerInbox,
    results: &ResultChannel,
    mut owned: Vec<Option<Disk>>,
) -> Vec<Option<Disk>> {
    while let Some(batch) = inbox.recv() {
        let mut out: Vec<ResultEntry> = Vec::with_capacity(batch.len());
        for item in &batch {
            let disk = match owned.get_mut(item.plan.disk).and_then(Option::as_mut) {
                Some(d) => d,
                // simlint::allow(r3, "routing invariant: the dispatcher only ships owned disks here")
                None => unreachable!("piece routed to a disk this worker does not own"),
            };
            let begin = disk.free_at().max(item.ready);
            let end =
                disk.service_bytes(item.ready, item.plan.start_byte, item.plan.len_bytes, item.plan.kind);
            match out.last_mut() {
                Some(e) if e.event == item.event => {
                    e.begin = e.begin.min(begin);
                    e.end = e.end.max(end);
                }
                _ => out.push(ResultEntry { event: item.event, begin, end }),
            }
        }
        if !out.is_empty() {
            results.post(out);
        }
    }
    owned
}

/// A decided-but-uncommitted event, tracked until all its pieces complete.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventRec {
    pub user: UserId,
    /// Decision time (the serial loop's `clock` for this event).
    pub t: SimTime,
    /// The think-time draw made at decision time (drawn there so the RNG
    /// stream position matches the serial loop exactly).
    pub think_ms: f64,
    /// Whether an operation ran (gates the latency sample, like the serial
    /// loop's empty-file-population check).
    pub op_ran: bool,
    /// Bytes to attribute to the throughput meter (0 for I/O-free events).
    pub bytes: u64,
    /// Fold of the pieces' service-window starts (`MAX` until one lands).
    pub begin: SimTime,
    /// Fold of the pieces' completions, seeded with `t` — the serial
    /// `transfer` fold's `completion = max(clock, span.end, …)`.
    pub end: SimTime,
    /// Worker reports still outstanding. Managed by
    /// [`EffectPipeline::admit`]; callers initialize it to 0.
    pub(crate) pending: u32,
}

/// Pieces staged per event before a batch flush; one flush per ~this many
/// pieces keeps workers streaming without a lock round-trip per event.
const FLUSH_PIECES: usize = 128;

/// Decision-order pipeline between the decision thread and the effect
/// workers: stages pieces, tracks in-flight events, maintains the
/// lookahead window, and releases completed events strictly in decision
/// order.
#[derive(Debug)]
pub(crate) struct EffectPipeline {
    workers: usize,
    stages: Vec<Vec<WorkItem>>,
    staged: usize,
    inflight: VecDeque<EventRec>,
    /// Event id of `inflight.front()`.
    base: u64,
    next_event: u64,
    /// Monotone min-deque of `(event id, t + think)` over in-flight events:
    /// the front is the earliest time any pending completion could
    /// reschedule its user — the lookahead window bound.
    reserve: VecDeque<(u64, SimTime)>,
}

impl EffectPipeline {
    pub(crate) fn new(workers: usize) -> Self {
        debug_assert!((1..=64).contains(&workers), "worker mask is a u64");
        EffectPipeline {
            workers,
            stages: (0..workers).map(|_| Vec::new()).collect(),
            staged: 0,
            inflight: VecDeque::new(),
            base: 0,
            next_event: 0,
            reserve: VecDeque::new(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// The lookahead window bound: the earliest `t + think` over in-flight
    /// events (`MAX` when nothing is in flight, so any head passes).
    pub(crate) fn min_reserve(&self) -> SimTime {
        self.reserve.front().map_or(SimTime::MAX, |&(_, r)| r)
    }

    /// Admits a decided event: routes its pieces to the owning workers'
    /// stage buffers (shard `disk mod S`, worker `shard mod W`), registers
    /// the in-flight record, and flushes stages past the batch threshold.
    pub(crate) fn admit(
        &mut self,
        rec: EventRec,
        reserve: SimTime,
        pieces: &mut Vec<PiecePlan>,
        shards: usize,
        chans: &EffectChannels,
    ) {
        let id = self.next_event;
        self.next_event += 1;
        let mut mask: u64 = 0;
        for plan in pieces.drain(..) {
            let worker = (plan.disk % shards) % self.workers;
            self.stages[worker].push(WorkItem { event: id, ready: rec.t, plan });
            mask |= 1 << worker;
            self.staged += 1;
        }
        let mut rec = rec;
        rec.pending = mask.count_ones();
        self.inflight.push_back(rec);
        while self.reserve.back().is_some_and(|&(_, r)| r >= reserve) {
            self.reserve.pop_back();
        }
        self.reserve.push_back((id, reserve));
        if self.staged >= FLUSH_PIECES {
            self.flush(chans);
        }
    }

    /// Ships all staged batches to the workers.
    pub(crate) fn flush(&mut self, chans: &EffectChannels) {
        for (worker, stage) in self.stages.iter_mut().enumerate() {
            if !stage.is_empty() {
                chans.inboxes[worker].send(std::mem::take(stage));
            }
        }
        self.staged = 0;
    }

    /// Folds worker reports into their in-flight records.
    pub(crate) fn apply(&mut self, batches: Vec<Vec<ResultEntry>>) {
        for batch in batches {
            for entry in batch {
                debug_assert!(entry.event >= self.base, "report for an already-committed event");
                let idx = (entry.event - self.base) as usize;
                let rec = &mut self.inflight[idx];
                rec.begin = rec.begin.min(entry.begin);
                rec.end = rec.end.max(entry.end);
                debug_assert!(rec.pending > 0, "duplicate worker report");
                rec.pending -= 1;
            }
        }
    }

    /// Whether the oldest in-flight event has all its reports in.
    pub(crate) fn front_resolved(&self) -> bool {
        self.inflight.front().is_some_and(|rec| rec.pending == 0)
    }

    /// Removes and returns the oldest in-flight event (must be resolved).
    pub(crate) fn pop_front(&mut self) -> EventRec {
        let rec = match self.inflight.pop_front() {
            Some(rec) => rec,
            // simlint::allow(r3, "callers gate on front_resolved; an empty pop is a pipeline bug")
            None => unreachable!("pop_front on an empty effect pipeline"),
        };
        debug_assert_eq!(rec.pending, 0, "committing an unresolved event");
        if self.reserve.front().is_some_and(|&(id, _)| id == self.base) {
            self.reserve.pop_front();
        }
        self.base += 1;
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readopt_disk::IoKind;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    /// Interleaved schedules and pops must match the single-heap queue at
    /// any shard count — the bit-identical merge-order guarantee.
    #[test]
    fn sharded_queue_matches_single_heap_at_any_shard_count() {
        // Deterministic pseudo-random schedule pattern with many exact-time
        // ties (times quantized to 8 distinct values).
        let script: Vec<(u64, u32)> = (0u64..200)
            .map(|i| ((i * 2654435761) % 8 * 100, (i % 23) as u32))
            .collect();
        let reference = |pops_between: usize| {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            for (i, &(time, user)) in script.iter().enumerate() {
                q.schedule(t(time), UserId(user));
                if i % (pops_between + 1) == pops_between {
                    if let Some(e) = q.pop() {
                        out.push((e.time, e.user.0));
                    }
                }
            }
            while let Some(e) = q.pop() {
                out.push((e.time, e.user.0));
            }
            out
        };
        for kind in [EventQueueKind::Heap, EventQueueKind::Calendar] {
            for shards in [1usize, 2, 3, 7, 16, 64] {
                for pops_between in [0usize, 2] {
                    let mut q = ShardedEventQueue::with_kind(shards, kind);
                    let mut merged = Vec::new();
                    for (i, &(time, user)) in script.iter().enumerate() {
                        q.schedule(t(time), UserId(user));
                        if i % (pops_between + 1) == pops_between {
                            let peek = q.peek_time();
                            if let Some(e) = q.pop() {
                                assert_eq!(peek, Some(e.time), "peek/pop disagree");
                                merged.push((e.time, e.user.0));
                            }
                        }
                    }
                    while let Some(e) = q.pop() {
                        merged.push((e.time, e.user.0));
                    }
                    assert_eq!(
                        merged,
                        reference(pops_between),
                        "merge order diverged at {shards} shards \
                         (pops_between={pops_between}, {kind:?})"
                    );
                    assert!(q.is_empty());
                    assert_eq!(q.len(), 0);
                }
            }
        }
    }

    /// Draining to checkpoint form and restoring must reproduce the exact
    /// pop order — ties included — at any shard count, including a restore
    /// into a queue with a *different* shard count (checkpoints are
    /// shard-count-portable because the seq stamps are global).
    #[test]
    fn drain_restore_roundtrip_preserves_merge_order() {
        for (from_shards, to_shards) in [(1usize, 1usize), (4, 4), (4, 7), (7, 2)] {
            let mut q = ShardedEventQueue::new(from_shards);
            for i in 0u64..100 {
                q.schedule(t((i * 2654435761) % 6 * 50), UserId((i % 13) as u32));
            }
            // Pop a few first so the snapshot is mid-run, not pristine.
            for _ in 0..17 {
                q.pop();
            }
            let mut reference = Vec::new();
            {
                let mut probe = ShardedEventQueue::new(from_shards);
                let (entries, seq) = q.drain_entries();
                probe.restore_entries(&entries, seq).expect("restore probe");
                while let Some(e) = probe.pop() {
                    reference.push((e.time, e.user.0));
                }
                probe.restore_entries(&entries, seq).expect("restore again");
                q.restore_entries(&entries, seq).expect("restore original");
            }
            let (entries, seq) = q.drain_entries();
            assert_eq!(entries.len(), 83);
            let mut restored = ShardedEventQueue::new(to_shards);
            restored.restore_entries(&entries, seq).expect("restore");
            assert_eq!(restored.len(), 83);
            let mut order = Vec::new();
            while let Some(e) = restored.pop() {
                order.push((e.time, e.user.0));
            }
            assert_eq!(order, reference, "{from_shards} -> {to_shards} shards");
            // New schedules continue the global seq stream after the old
            // counter, so they tie-break *after* restored entries.
            let mut restored = ShardedEventQueue::new(to_shards);
            restored.restore_entries(&entries, seq).expect("restore");
            restored.schedule(SimTime::ZERO, UserId(1));
            let first = restored.pop().map(|e| (e.time, e.user.0));
            assert_eq!(first, Some((SimTime::ZERO, 1)), "time still dominates seq");
        }
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let mut q = ShardedEventQueue::new(3);
        q.schedule(t(10), UserId(0));
        q.schedule(t(5), UserId(1));
        let (entries, seq) = q.drain_entries();
        assert_eq!(entries[0].0, t(5), "drain order is merge order");
        // Non-empty target.
        let mut busy = ShardedEventQueue::new(3);
        busy.schedule(t(1), UserId(0));
        assert!(busy.restore_entries(&entries, seq).is_err());
        // Seq at/past the counter.
        let mut fresh = ShardedEventQueue::new(3);
        assert!(fresh.restore_entries(&entries, 1).is_err());
        // Out of merge order.
        let mut swapped = entries.clone();
        swapped.swap(0, 1);
        assert!(fresh.restore_entries(&swapped, seq).is_err());
        assert!(fresh.is_empty(), "failed restore leaves nothing committed");
    }

    #[test]
    fn sharded_queue_routes_users_to_owning_shards() {
        let q = ShardedEventQueue::new(4);
        assert_eq!(q.nshards(), 4);
        assert_eq!(q.shard_of(UserId(0)), 0);
        assert_eq!(q.shard_of(UserId(5)), 1);
        assert_eq!(q.shard_of(UserId(7)), 3);
        // More shards than users is legal: high shards simply stay empty.
        let q = ShardedEventQueue::new(16);
        assert_eq!(q.shard_of(UserId(3)), 3);
    }

    #[test]
    fn inbox_delivers_in_order_and_drains_after_close() {
        let inbox = WorkerInbox::default();
        let item = |event: u64| WorkItem {
            event,
            ready: t(0),
            plan: PiecePlan { disk: 0, start_byte: 0, len_bytes: 1, kind: IoKind::Read },
        };
        inbox.send(vec![item(0), item(1)]);
        inbox.send(vec![item(2)]);
        inbox.close();
        assert_eq!(inbox.recv().map(|b| b.len()), Some(2));
        assert_eq!(inbox.recv().map(|b| b.len()), Some(1));
        assert_eq!(inbox.recv().map(|b| b.len()), None, "closed and drained");
    }

    #[test]
    fn pipeline_tracks_lookahead_window_and_commit_order() {
        let chans = EffectChannels::new(2);
        let mut fx = EffectPipeline::new(2);
        assert_eq!(fx.min_reserve(), SimTime::MAX, "empty window blocks nothing");
        let rec = |at: u64| EventRec {
            user: UserId(0),
            t: t(at),
            think_ms: 0.0,
            op_ran: true,
            bytes: 0,
            begin: SimTime::MAX,
            end: t(at),
            pending: 0,
        };
        // Three pieceless events with reserves 50, 30, 90.
        let mut none: Vec<PiecePlan> = Vec::new();
        fx.admit(rec(10), t(50), &mut none, 4, &chans);
        fx.admit(rec(20), t(30), &mut none, 4, &chans);
        fx.admit(rec(25), t(90), &mut none, 4, &chans);
        assert_eq!(fx.min_reserve(), t(30), "min over the in-flight window");
        assert!(fx.front_resolved(), "no pieces → immediately resolved");
        assert_eq!(fx.pop_front().t, t(10), "commits in decision order");
        assert_eq!(fx.min_reserve(), t(30));
        fx.pop_front();
        assert_eq!(fx.min_reserve(), t(90), "window advances as events retire");
        fx.pop_front();
        assert!(fx.is_empty());
        assert_eq!(fx.min_reserve(), SimTime::MAX);
    }

    #[test]
    fn pipeline_routes_pieces_by_shard_then_worker_and_counts_reports() {
        let chans = EffectChannels::new(2);
        let mut fx = EffectPipeline::new(2);
        let plan = |disk: usize| PiecePlan { disk, start_byte: 0, len_bytes: 8, kind: IoKind::Write };
        // Four shards over two workers: disks 0,2 → worker 0; disks 1,3 → worker 1.
        let mut pieces = vec![plan(0), plan(1), plan(2), plan(3)];
        let rec = EventRec {
            user: UserId(1),
            t: t(5),
            think_ms: 1.0,
            op_ran: true,
            bytes: 32,
            begin: SimTime::MAX,
            end: t(5),
            pending: 0,
        };
        fx.admit(rec, t(1005), &mut pieces, 4, &chans);
        assert!(pieces.is_empty(), "admit drains the staging buffer");
        assert!(!fx.front_resolved(), "two worker reports outstanding");
        fx.flush(&chans);
        assert_eq!(chans.inboxes[0].recv().map(|b| b.len()), Some(2));
        assert_eq!(chans.inboxes[1].recv().map(|b| b.len()), Some(2));
        fx.apply(vec![vec![ResultEntry { event: 0, begin: t(7), end: t(40) }]]);
        assert!(!fx.front_resolved(), "one report is not enough");
        fx.apply(vec![vec![ResultEntry { event: 0, begin: t(6), end: t(30) }]]);
        assert!(fx.front_resolved());
        let done = fx.pop_front();
        assert_eq!(done.begin, t(6), "begin folds min across workers");
        assert_eq!(done.end, t(40), "end folds max across workers");
    }

    #[test]
    fn worker_services_pieces_and_folds_per_event() {
        use readopt_disk::DiskGeometry;
        let inbox = WorkerInbox::default();
        let results = ResultChannel::default();
        // The worker owns disk 1 of 2; disk 0's slot is None.
        let owned = vec![None, Some(Disk::new(DiskGeometry::wren_iv()))];
        let mut reference = Disk::new(DiskGeometry::wren_iv());
        let piece = |event: u64, start: u64, len: u64| WorkItem {
            event,
            ready: t(0),
            plan: PiecePlan { disk: 1, start_byte: start, len_bytes: len, kind: IoKind::Read },
        };
        inbox.send(vec![piece(0, 0, 4096), piece(0, 8192, 4096), piece(1, 0, 512)]);
        inbox.close();
        let owned = worker_loop(&inbox, &results, owned);
        let batches = results.drain_nonblocking();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 2, "three pieces folded into two events");
        assert_eq!(batches[0][0].event, 0);
        assert_eq!(batches[0][1].event, 1);
        // The worker's disk state must equal serially servicing the same
        // pieces in the same order.
        let b0 = reference.free_at().max(t(0));
        let e0a = reference.service_bytes(t(0), 0, 4096, IoKind::Read);
        let e0b = reference.service_bytes(t(0), 8192, 4096, IoKind::Read);
        let e1 = reference.service_bytes(t(0), 0, 512, IoKind::Read);
        assert_eq!(batches[0][0].begin, b0);
        assert_eq!(batches[0][0].end, e0a.max(e0b));
        assert_eq!(batches[0][1].end, e1);
        let disk = owned[1].as_ref().map(|d| d.free_at());
        assert_eq!(disk, Some(reference.free_at()), "disk state matches serial servicing");
    }
}
