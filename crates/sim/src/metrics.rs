//! Deterministic observability snapshots: where simulated disk time went.
//!
//! The paper explains every throughput curve by decomposing disk time into
//! seek, rotational latency, and transfer (§2.1, Table 1). This module turns
//! the raw counters the lower layers already keep ([`DiskStats`],
//! [`readopt_alloc::FragGauges`], engine counters) into a serializable
//! per-test snapshot. Everything here is *derived* at snapshot time — taking
//! a snapshot never touches simulation state, so results are bit-identical
//! with or without the observability layer.

use readopt_alloc::FragGauges;
use readopt_disk::{DiskStats, StorageStats};
use serde::{Deserialize, Serialize};

/// One disk's per-phase service-time decomposition over a measurement
/// window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiskPhaseMetrics {
    /// Physical requests serviced.
    pub requests: u64,
    /// Requests that moved the head across cylinders.
    pub seeks: u64,
    /// Total seek time, ms.
    pub seek_ms: f64,
    /// Total rotational latency, ms.
    pub rotational_ms: f64,
    /// Total media transfer time, ms (includes head-switch penalties).
    pub transfer_ms: f64,
    /// Head-switch penalties inside `transfer_ms` (a subset, not an extra
    /// busy component).
    pub head_switch_ms: f64,
    /// Total busy time: `seek + rotational + transfer`.
    pub busy_ms: f64,
    /// Time requests spent waiting behind earlier work (not busy time).
    pub queue_wait_ms: f64,
    /// Requests that had to wait.
    pub queued_requests: u64,
    /// Bytes read from the media.
    pub bytes_read: u64,
    /// Bytes written to the media.
    pub bytes_written: u64,
    /// `busy_ms / window_ms`, clamped to `[0, 1]` (0 for an empty window).
    pub utilization: f64,
    /// Queue-depth histogram observed at request arrivals (see
    /// [`readopt_disk::QUEUE_DEPTH_BUCKETS`]); empty when idle all window.
    pub queue_depth_hist: Vec<u64>,
}

impl DiskPhaseMetrics {
    /// Derives the decomposition from raw counters over `window_ms`.
    pub fn from_stats(d: &DiskStats, window_ms: f64) -> Self {
        let utilization =
            if window_ms > 0.0 { (d.busy_ms / window_ms).clamp(0.0, 1.0) } else { 0.0 };
        DiskPhaseMetrics {
            requests: d.requests,
            seeks: d.seeks,
            seek_ms: d.seek_ms,
            rotational_ms: d.rotational_ms,
            transfer_ms: d.transfer_ms,
            head_switch_ms: d.head_switch_ms,
            busy_ms: d.busy_ms,
            queue_wait_ms: d.queue_wait_ms,
            queued_requests: d.queued_requests,
            bytes_read: d.bytes_read,
            bytes_written: d.bytes_written,
            utilization,
            queue_depth_hist: d.queue_depth_hist.clone(),
        }
    }

    /// Mean seek time per request, ms (0 when idle).
    pub fn avg_seek_ms(&self) -> f64 {
        per_request(self.seek_ms, self.requests)
    }

    /// Mean rotational latency per request, ms.
    pub fn avg_rotational_ms(&self) -> f64 {
        per_request(self.rotational_ms, self.requests)
    }

    /// Mean transfer time per request, ms.
    pub fn avg_transfer_ms(&self) -> f64 {
        per_request(self.transfer_ms, self.requests)
    }

    /// Mean queue wait per request, ms.
    pub fn avg_queue_wait_ms(&self) -> f64 {
        per_request(self.queue_wait_ms, self.requests)
    }

    /// Percentage of busy time in each phase: `(seek, rotational,
    /// transfer)`; zeros when the disk never worked.
    pub fn phase_shares_pct(&self) -> (f64, f64, f64) {
        if self.busy_ms <= 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                100.0 * self.seek_ms / self.busy_ms,
                100.0 * self.rotational_ms / self.busy_ms,
                100.0 * self.transfer_ms / self.busy_ms,
            )
        }
    }
}

fn per_request(total_ms: f64, requests: u64) -> f64 {
    if requests == 0 {
        0.0
    } else {
        total_ms / requests as f64
    }
}

/// Array-wide decomposition: per-disk plus the combined view and the
/// logical-level request accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageMetrics {
    /// Per-physical-disk decomposition, indexed by disk.
    pub per_disk: Vec<DiskPhaseMetrics>,
    /// Element-wise sum over all disks (utilization is the mean).
    pub combined: DiskPhaseMetrics,
    /// Logical read requests submitted to the array.
    pub logical_reads: u64,
    /// Logical write requests submitted to the array.
    pub logical_writes: u64,
    /// Logical bytes read.
    pub logical_bytes_read: u64,
    /// Logical bytes written.
    pub logical_bytes_written: u64,
    /// Physical-over-logical write amplification.
    pub write_amplification: f64,
}

impl StorageMetrics {
    /// Derives array metrics from raw counters over `window_ms`.
    pub fn from_stats(s: &StorageStats, window_ms: f64) -> Self {
        let per_disk: Vec<DiskPhaseMetrics> =
            s.per_disk.iter().map(|d| DiskPhaseMetrics::from_stats(d, window_ms)).collect();
        let mut combined = DiskPhaseMetrics::from_stats(&s.combined(), window_ms);
        // The combined utilization is the mean over disks, not busy/window
        // (which for an N-disk array could reach N).
        combined.utilization = if per_disk.is_empty() {
            0.0
        } else {
            let mut sum = 0.0;
            for d in &per_disk {
                sum += d.utilization;
            }
            sum / per_disk.len() as f64
        };
        StorageMetrics {
            per_disk,
            combined,
            logical_reads: s.logical_reads,
            logical_writes: s.logical_writes,
            logical_bytes_read: s.logical_bytes_read,
            logical_bytes_written: s.logical_bytes_written,
            write_amplification: s.write_amplification(),
        }
    }
}

/// Event-engine activity counters for one test run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineCounters {
    /// Events popped from the event queue.
    pub events: u64,
    /// Operations executed against files.
    pub operations: u64,
    /// Logical transfers that reached the disk system.
    pub transfers: u64,
    /// Allocation failures observed.
    pub disk_full_events: u64,
    /// Mid-measurement refill passes (utilization dipped below the lower
    /// bound and the disk was topped back up).
    pub refill_passes: u64,
}

/// Allocation-policy gauges at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AllocGauges {
    /// Policy name ("buddy", "extent", …).
    pub policy: String,
    /// Fraction of capacity in use.
    pub utilization: f64,
    /// Free-space fragmentation gauges.
    pub frag: FragGauges,
}

/// Everything one test run reveals about where time went.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TestMetrics {
    /// Which test ("allocation", "application", "sequential", …).
    pub test: String,
    /// The measurement window the utilizations are computed over, ms.
    pub window_ms: f64,
    /// Disk-system decomposition.
    pub storage: StorageMetrics,
    /// Event-engine counters.
    pub engine: EngineCounters,
    /// Allocator gauges.
    pub alloc: AllocGauges,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_disk() -> DiskStats {
        DiskStats {
            requests: 4,
            seeks: 2,
            seek_ms: 10.0,
            rotational_ms: 20.0,
            transfer_ms: 30.0,
            head_switch_ms: 1.0,
            busy_ms: 60.0,
            queue_wait_ms: 5.0,
            queued_requests: 1,
            bytes_read: 4096,
            bytes_written: 0,
            queue_depth_hist: vec![3, 1, 0, 0, 0, 0, 0, 0, 0],
        }
    }

    #[test]
    fn utilization_is_busy_over_window_clamped() {
        let d = busy_disk();
        let m = DiskPhaseMetrics::from_stats(&d, 120.0);
        assert!((m.utilization - 0.5).abs() < 1e-12);
        let m = DiskPhaseMetrics::from_stats(&d, 30.0);
        assert_eq!(m.utilization, 1.0, "clamped");
        let m = DiskPhaseMetrics::from_stats(&d, 0.0);
        assert_eq!(m.utilization, 0.0, "empty window");
    }

    #[test]
    fn phase_shares_sum_to_100() {
        let m = DiskPhaseMetrics::from_stats(&busy_disk(), 100.0);
        let (s, r, t) = m.phase_shares_pct();
        assert!((s + r + t - 100.0).abs() < 1e-9);
        assert!((m.avg_seek_ms() - 2.5).abs() < 1e-12);
        assert!((m.avg_queue_wait_ms() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn idle_disk_yields_zero_shares() {
        let m = DiskPhaseMetrics::from_stats(&DiskStats::default(), 100.0);
        assert_eq!(m.phase_shares_pct(), (0.0, 0.0, 0.0));
        assert_eq!(m.avg_seek_ms(), 0.0);
    }

    #[test]
    fn storage_combined_utilization_is_mean_over_disks() {
        let mut s = StorageStats::new(2);
        s.per_disk[0] = busy_disk(); // busy 60 of 120 → 0.5
        let m = StorageMetrics::from_stats(&s, 120.0);
        assert_eq!(m.per_disk.len(), 2);
        assert!((m.combined.utilization - 0.25).abs() < 1e-12);
        assert!((m.combined.busy_ms - 60.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut s = StorageStats::new(1);
        s.per_disk[0] = busy_disk();
        let tm = TestMetrics {
            test: "application".into(),
            window_ms: 120.0,
            storage: StorageMetrics::from_stats(&s, 120.0),
            engine: EngineCounters { events: 10, operations: 8, transfers: 6, ..Default::default() },
            alloc: AllocGauges { policy: "extent".into(), utilization: 0.9, ..Default::default() },
        };
        let json = serde_json::to_string(&tm).unwrap();
        assert!(json.contains("\"seek_ms\""));
        assert!(json.contains("\"queue_depth_hist\""));
        assert!(json.contains("\"write_amplification\""));
    }
}
