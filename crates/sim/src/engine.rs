//! The simulation engine: wires a disk system, an allocation policy and a
//! workload together and runs the paper's three test procedures (§2.2, §3).

use crate::config::SimConfig;
use crate::event::{EventQueueKind, UserId};
use crate::filetype::{FileTypeConfig, OpKind};
use crate::hist::{LatencyReservoir, TestHist};
use crate::measure::ThroughputMeter;
use crate::metrics::{AllocGauges, EngineCounters, StorageMetrics, TestMetrics};
use crate::results::{FragReport, PerfReport, SuiteReport};
use crate::rng::SimRng;
use crate::shard::{
    worker_loop, CloseOnDrop, EffectChannels, EffectPipeline, EventRec, MarkDeadOnPanic,
    ShardedEventQueue,
};
use crate::state::{FileTable, UserTable};
use readopt_alloc::{AllocError, Extent, FileHints, FileId, Policy};
use readopt_disk::{
    calibrate_max_bandwidth, Disk, IoKind, IoRequest, PiecePlan, SimDuration, SimTime, Storage,
};

/// Which test procedure the event loop is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full §2.2 operation mix with disk I/O.
    Application,
    /// Whole-file reads/writes only (§3's sequential test).
    Sequential,
    /// Extend/truncate/delete/create only, no I/O (§3's allocation test).
    AllocationOnly,
}

/// Converts a population-bounded count (files, users, types, positions)
/// to the `u32` width the SoA state tables index by.
fn small_u32(n: usize) -> u32 {
    u32::try_from(n)
        // simlint::allow(r3, "counts here are bounded by the configured file/user/type populations, far below u32")
        .unwrap_or_else(|_| unreachable!("population count exceeds u32"))
}

mod checkpoint;

pub use checkpoint::{CheckpointSpec, CHECKPOINT_KILL_EXIT};

/// What a single event step produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    Ran,
    AllocationFailed,
}

/// The decision half of one event (see [`Simulation::decide`]): everything
/// the serial step computes *before* the effects are known — including the
/// think-time draw, made at decision time so the RNG stream position never
/// depends on effect timing.
#[derive(Debug, Clone, Copy)]
struct Decided {
    user: UserId,
    /// The event's scheduled time (the decision clock).
    t: SimTime,
    think_ms: f64,
    /// Whether an operation actually ran (false for users whose file-type
    /// population is empty) — gates the latency sample.
    op_ran: bool,
    /// In-line completion time. Meaningful on the serial path; on the
    /// planning path I/O completions come from the effect pipeline instead
    /// and this holds the decision clock.
    completion: SimTime,
    outcome: StepOutcome,
}

/// The simulator (§2's three-component model, assembled).
pub struct Simulation {
    storage: Box<dyn Storage>,
    policy: Box<dyn Policy>,
    types: Vec<FileTypeConfig>,
    /// Per-file hot state, packed struct-of-arrays (see [`crate::state`]).
    /// Slots are never freed — retirement marks a file dead in place — so
    /// raw indices stay stable for the whole run.
    files: FileTable,
    files_by_type: Vec<Vec<u32>>,
    /// user → file-type index, packed struct-of-arrays.
    users: UserTable,
    queue: ShardedEventQueue,
    rng: SimRng,
    unit_bytes: u64,
    /// Calibrated maximum sequential bandwidth, bytes/ms.
    max_bw: f64,
    clock: SimTime,
    disk_full_events: u64,
    ops: u64,
    // §3 test parameters, copied from the config.
    util_lower: f64,
    util_upper: f64,
    interval: SimDuration,
    stabilize_window: usize,
    stabilize_tolerance_pct: f64,
    max_intervals: usize,
    max_allocation_ops: u64,
    /// Cap on the exact latency buffer, copied from
    /// [`SimConfig::latency_sample_cap`]: enough for every paper sweep,
    /// exceeded only by the million-user rungs (which is what the
    /// dropped-sample counter and the log-bucketed reservoir are for).
    latency_sample_cap: usize,
    /// Per-operation latencies collected during the current measurement
    /// (exact samples, capped at `latency_sample_cap`).
    latencies: Vec<f64>,
    /// Samples the cap clipped from `latencies` since the last measurement
    /// reset — surfaced through [`Simulation::latency_hist`] so truncated
    /// p99s are visible instead of silent.
    dropped_latencies: u64,
    /// Log-bucketed companion reservoir: absorbs *every* sample (no cap)
    /// at O(1) cost for the `*.hist.json` percentile artifact.
    hist: LatencyReservoir,
    /// Scratch buffer for `transfer`'s extent-map lookups, reused across
    /// operations so the per-op hot path allocates nothing.
    runs_scratch: Vec<Extent>,
    /// Scratch buffer for `run_reallocation`'s live-file snapshot.
    realloc_scratch: Vec<(FileId, u64)>,
    /// Observability counters since the last [`Simulation::reset_counters`]
    /// (plain integer increments on the hot path; `ops` and
    /// `disk_full_events` deltas come from the baselines below).
    counters: EngineCounters,
    ops_at_counter_reset: u64,
    disk_full_at_counter_reset: u64,
    /// Event-queue shard count (≥ 1); results-invariant by construction.
    shards: usize,
    /// Which structure backs the event queue; results-invariant (both
    /// backends pop in identical order), re-applied on `schedule_users`.
    event_queue: EventQueueKind,
    /// Configured effect-worker thread count (0/1 = in-line execution).
    shard_workers: usize,
    /// True while the pipelined loop is deciding: `transfer` then *plans*
    /// per-disk pieces into `plan_pieces` instead of submitting, because
    /// the disks live on worker threads.
    planning: bool,
    /// The service window + bytes of the current event's transfer, staged
    /// by `transfer` for `commit_direct` to meter (serial path only).
    pending_span: Option<(SimTime, SimTime, u64)>,
    /// Piece staging buffer for planning-mode `transfer` (reused).
    plan_pieces: Vec<PiecePlan>,
    /// Meter bytes of the current event's planned transfer, if any.
    plan_bytes: u64,
}

impl Simulation {
    /// Builds and initializes a simulation: creates every file at its
    /// sampled initial size (§2.2's two-phase initialization) and calibrates
    /// the disk system's maximum sequential bandwidth.
    pub fn new(config: &SimConfig, seed: u64) -> Self {
        // simlint::allow(r3, "constructor contract: an invalid config is a caller bug, not a runtime condition")
        config.validate().expect("invalid simulation configuration");
        let storage = config.array.build();
        let unit_bytes = storage.disk_unit_bytes();
        let max_bw = calibrate_max_bandwidth(&config.array);
        let mut rng = SimRng::new(seed);
        let policy_seed = rng.uniform_u64(0, u64::MAX - 1);
        let policy = config.policy.build(storage.capacity_units(), unit_bytes, policy_seed);
        let mut sim = Simulation {
            storage,
            policy,
            types: config.file_types.clone(),
            files: FileTable::new(),
            files_by_type: vec![Vec::new(); config.file_types.len()],
            users: UserTable::new(),
            queue: ShardedEventQueue::with_kind(config.shards, config.event_queue),
            rng,
            unit_bytes,
            max_bw,
            clock: SimTime::ZERO,
            disk_full_events: 0,
            ops: 0,
            util_lower: config.util_lower,
            util_upper: config.util_upper,
            interval: config.interval,
            stabilize_window: config.stabilize_window,
            stabilize_tolerance_pct: config.stabilize_tolerance_pct,
            max_intervals: config.max_intervals,
            max_allocation_ops: config.max_allocation_ops,
            latency_sample_cap: config.latency_sample_cap,
            // Pre-sized so steady-state measurement never reallocates: the
            // latency cap is latency_sample_cap entries but typical runs
            // stay well under 16k, and push() doubling takes care of the
            // outliers.
            latencies: Vec::with_capacity(16 * 1024),
            dropped_latencies: 0,
            hist: LatencyReservoir::new(),
            runs_scratch: Vec::new(),
            realloc_scratch: Vec::new(),
            counters: EngineCounters::default(),
            ops_at_counter_reset: 0,
            disk_full_at_counter_reset: 0,
            shards: config.shards.max(1),
            event_queue: config.event_queue,
            shard_workers: config.shard_workers,
            planning: false,
            pending_span: None,
            plan_pieces: Vec::new(),
            plan_bytes: 0,
        };
        sim.initialize_files();
        sim
    }

    /// Calibrated maximum sequential bandwidth, in bytes per millisecond.
    pub fn max_bandwidth_bytes_per_ms(&self) -> f64 {
        self.max_bw
    }

    /// Fraction of capacity in use.
    pub fn utilization(&self) -> f64 {
        1.0 - self.policy.free_units() as f64 / self.policy.capacity_units() as f64
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The allocation policy under test (for inspection).
    pub fn policy(&self) -> &dyn Policy {
        self.policy.as_ref()
    }

    /// The disk system under test (for inspection).
    pub fn storage(&self) -> &dyn Storage {
        self.storage.as_ref()
    }

    /// Clears the disk system's activity counters (queue state and head
    /// positions persist), so the next test's physical I/O can be inspected
    /// in isolation.
    pub fn storage_reset_for_probe(&mut self) {
        self.storage.reset_stats();
    }

    /// Clears the engine's observability counters so the next test's
    /// activity can be read in isolation. Simulation state is untouched.
    pub fn reset_counters(&mut self) {
        self.counters = EngineCounters::default();
        self.ops_at_counter_reset = self.ops;
        self.disk_full_at_counter_reset = self.disk_full_events;
    }

    /// Engine counters accumulated since the last [`Self::reset_counters`].
    pub fn engine_counters(&self) -> EngineCounters {
        EngineCounters {
            operations: self.ops - self.ops_at_counter_reset,
            disk_full_events: self.disk_full_events - self.disk_full_at_counter_reset,
            ..self.counters.clone()
        }
    }

    /// Snapshots the full observability view of the run so far: the disk
    /// system's per-phase decomposition over `window_ms`, the engine
    /// counters since the last reset, and the allocator's gauges. Pure
    /// read — calling it changes no simulation state or RNG draw.
    pub fn metrics_snapshot(&self, test: &str, window_ms: f64) -> TestMetrics {
        TestMetrics {
            test: test.to_string(),
            window_ms,
            storage: StorageMetrics::from_stats(&self.storage.stats(), window_ms),
            engine: self.engine_counters(),
            alloc: AllocGauges {
                policy: self.policy.name().to_string(),
                utilization: self.utilization(),
                frag: self.policy.frag_gauges(),
            },
        }
    }

    fn to_units(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.unit_bytes).max(1)
    }

    fn hints(t: &FileTypeConfig) -> FileHints {
        FileHints { mean_extent_bytes: t.allocation_size_bytes }
    }

    /// §2.2 phase two: "the files are created. For each file a size is
    /// selected from a uniform distribution … Allocation requests are made
    /// until the allocation length of the file is greater than or equal to
    /// this size." Requests are made in read/write-sized chunks, which is
    /// what lets the buddy policy's doubling rule unfold naturally.
    fn initialize_files(&mut self) {
        for t_idx in 0..self.types.len() {
            for _ in 0..self.types[t_idx].num_files {
                let target_bytes = self.types[t_idx].sample_initial_bytes(&mut self.rng);
                let policy_id = match self.policy.create(&Self::hints(&self.types[t_idx])) {
                    Ok(id) => id,
                    Err(_) => {
                        self.disk_full_events += 1;
                        continue;
                    }
                };
                let pos = small_u32(self.files_by_type[t_idx].len());
                let file_idx = self.files.push(policy_id, small_u32(t_idx), 0, pos);
                self.files_by_type[t_idx].push(file_idx);
                let target_units = self.to_units(target_bytes);
                self.grow_file(file_idx as usize, target_units);
            }
        }
    }

    /// Grows `file` by repeated chunked extends until its logical size
    /// reaches `target_units` (or the disk fills). No I/O is charged.
    fn grow_file(&mut self, file_idx: usize, target_units: u64) {
        let chunk = self.to_units(self.types[self.files.type_idx[file_idx] as usize].rw_size_bytes);
        while self.files.logical_units[file_idx] < target_units {
            let delta = chunk.min(target_units - self.files.logical_units[file_idx]);
            if self.ensure_allocated(file_idx, delta).is_err() {
                self.disk_full_events += 1;
                break;
            }
            self.files.logical_units[file_idx] += delta;
        }
    }

    /// Makes sure `delta` more units fit in the file's allocation,
    /// extending through the policy when needed ("each time a file grows
    /// beyond its current allocation").
    fn ensure_allocated(&mut self, file_idx: usize, delta: u64) -> Result<(), AllocError> {
        let policy_id = self.files.policy_id[file_idx];
        let allocated = self.policy.allocated_units(policy_id)?;
        let needed = (self.files.logical_units[file_idx] + delta).saturating_sub(allocated);
        if needed > 0 {
            self.policy.extend(policy_id, needed)?;
        }
        Ok(())
    }

    /// Fills the disk to the lower utilization bound `N` before a
    /// performance test — "the lower bound, N, indicates how full the disk
    /// system should be before measurements begin". Files are grown
    /// round-robin in rw-sized chunks; no I/O is charged.
    fn fill_to_lower_bound(&mut self) {
        let nfiles = self.files.capacity();
        if nfiles == 0 {
            return;
        }
        let mut idx = 0;
        let mut failures = 0;
        while self.utilization() < self.util_lower && failures < nfiles {
            let file_idx = idx % nfiles;
            idx += 1;
            if !self.files.live[file_idx] {
                failures += 1;
                continue;
            }
            let chunk = self.to_units(self.types[self.files.type_idx[file_idx] as usize].rw_size_bytes);
            if self.ensure_allocated(file_idx, chunk).is_ok() {
                self.files.logical_units[file_idx] += chunk;
                failures = 0;
            } else {
                failures += 1;
            }
        }
    }

    /// Discards pending events and schedules every user afresh: start times
    /// uniform in `[now, now + users × hit frequency)` per §2.2 phase one.
    fn schedule_users(&mut self) {
        self.queue = ShardedEventQueue::with_kind(self.shards, self.event_queue);
        self.users.clear();
        for (t_idx, t) in self.types.iter().enumerate() {
            let spread = f64::from(t.num_users) * t.hit_frequency_ms;
            let t32 = small_u32(t_idx);
            for _ in 0..t.num_users {
                let user = UserId(self.users.push(t32));
                let start = self.clock + SimDuration::from_ms(self.rng.uniform_f64(0.0, spread.max(1.0)));
                self.queue.schedule(start, user);
            }
        }
    }

    /// Processes one event. Returns the outcome; schedules the user's next
    /// event at `completion + Exp(process time)`. When measuring, the
    /// operation's issue→completion latency is appended to `latencies`.
    fn step(&mut self, mode: Mode, meter: Option<&mut ThroughputMeter>) -> StepOutcome {
        let d = self.decide(mode);
        self.commit_direct(&d, meter);
        d.outcome
    }

    /// The decision half of an event: pops the head, draws every random
    /// value (op choice, sizes, think time) in exactly the serial order,
    /// runs the operation's allocator side, and — depending on
    /// `self.planning` — either services its I/O in-line (staging the
    /// metered span in `pending_span`) or plans its per-disk pieces into
    /// `plan_pieces`. Makes every RNG draw of the legacy monolithic step,
    /// in the same order, so the stream position is identical.
    fn decide(&mut self, mode: Mode) -> Decided {
        // simlint::allow(r3, "every caller refills the queue before stepping; asserted by the run loops")
        let ev = self.queue.pop().unwrap_or_else(|| unreachable!("step called with an empty queue"));
        self.counters.events += 1;
        self.clock = ev.time;
        let t_idx = self.users.type_of(ev.user.0) as usize;
        let outcome;
        let completion;
        let op_ran;
        if self.files_by_type[t_idx].is_empty() {
            (outcome, completion) = (StepOutcome::Ran, self.clock);
            op_ran = false;
        } else {
            let file_idx =
                self.files_by_type[t_idx][self.rng.index(self.files_by_type[t_idx].len())] as usize;
            let op = {
                let t = &self.types[t_idx];
                match mode {
                    Mode::Application => t.choose_op(&mut self.rng),
                    Mode::Sequential => t.choose_sequential_op(&mut self.rng),
                    Mode::AllocationOnly => t.choose_allocation_op(&mut self.rng),
                }
            };
            (outcome, completion) = self.execute(file_idx, op, mode);
            self.ops += 1;
            op_ran = true;
        }
        let think_ms = self.rng.exponential(self.types[t_idx].process_time_ms);
        Decided { user: ev.user, t: ev.time, think_ms, op_ran, completion, outcome }
    }

    /// The commit half of an in-line (non-pipelined) event: records the
    /// latency sample, meters the staged span, and reschedules the user.
    /// None of this draws RNG, so running it after `decide`'s think draw is
    /// arithmetically identical to the legacy interleaving.
    fn commit_direct(&mut self, d: &Decided, meter: Option<&mut ThroughputMeter>) {
        if d.op_ran {
            self.record_latency(d.completion.since(d.t).as_ms());
        }
        if let Some((begin, end, bytes)) = self.pending_span.take() {
            if let Some(m) = meter {
                m.add_span(begin, end, bytes);
            }
        }
        self.queue.schedule(d.completion + SimDuration::from_ms(d.think_ms), d.user);
    }

    /// Records one completed operation's issue→completion latency: into
    /// the exact buffer while it has room (the `PerfReport` percentiles),
    /// counting overflow instead of silently clipping, and into the
    /// uncapped log-bucketed reservoir (the `*.hist.json` percentiles).
    /// The single home of the sample cap — both the serial and the
    /// pipelined commit paths go through here.
    fn record_latency(&mut self, latency_ms: f64) {
        if self.latencies.len() < self.latency_sample_cap {
            self.latencies.push(latency_ms);
        } else {
            self.dropped_latencies += 1;
        }
        self.hist.record_ms(latency_ms);
    }

    /// Resets the latency measurement state (exact buffer, overflow count,
    /// bucketed reservoir) at the start of a test.
    fn reset_latencies(&mut self) {
        self.latencies.clear();
        self.dropped_latencies = 0;
        self.hist.reset();
    }

    /// Log-bucketed latency snapshot of the samples recorded since the
    /// last measurement reset, labelled with the test name. Pure read.
    pub fn latency_hist(&self, test: &str) -> TestHist {
        self.hist.snapshot(test, self.dropped_latencies)
    }

    /// Executes one operation against one file. Returns (outcome,
    /// completion time). I/O is charged except in allocation mode.
    fn execute(&mut self, file_idx: usize, op: OpKind, mode: Mode) -> (StepOutcome, SimTime) {
        let io = mode != Mode::AllocationOnly;
        let whole_file = mode == Mode::Sequential;
        match op {
            OpKind::Read | OpKind::Write => {
                let logical = self.files.logical_units[file_idx];
                if logical == 0 {
                    // Nothing to transfer yet; grow instead (a brand-new
                    // file's first operation is its creation write).
                    return self.do_extend(file_idx, mode);
                }
                let t_idx = self.files.type_idx[file_idx] as usize;
                let size = if whole_file {
                    logical
                } else {
                    let bytes = self.types[t_idx].sample_rw_bytes(&mut self.rng);
                    self.to_units(bytes).min(logical)
                };
                let offset = if whole_file {
                    0
                } else if self.types[t_idx].sequential_access {
                    let cursor = &mut self.files.cursor[file_idx];
                    if *cursor + size > logical {
                        *cursor = 0;
                    }
                    let off = *cursor;
                    *cursor += size;
                    off
                } else {
                    let off = self.rng.uniform_u64(0, logical - size);
                    let t = &self.types[t_idx];
                    if t.page_aligned {
                        // Database-style page access: offsets fall on
                        // page (mean r/w size) boundaries.
                        let page = self.to_units(t.rw_size_bytes);
                        off / page * page
                    } else {
                        off
                    }
                };
                let kind = if matches!(op, OpKind::Read) { IoKind::Read } else { IoKind::Write };
                let completion = self.transfer(file_idx, offset, size, kind, io);
                (StepOutcome::Ran, completion)
            }
            OpKind::Extend => {
                // "Any extend operation occurring when the disk utilization
                // is greater than M is converted into a truncate operation."
                if mode != Mode::AllocationOnly && self.utilization() > self.util_upper {
                    return (self.do_truncate(file_idx), self.clock);
                }
                self.do_extend(file_idx, mode)
            }
            OpKind::Truncate => (self.do_truncate(file_idx), self.clock),
            OpKind::Delete => self.do_delete(file_idx, mode),
        }
    }

    /// Maps a logical range through the file's extent map, then either
    /// submits the physical runs in-line (staging the metered span in
    /// `pending_span`) or — in planning mode — emits their per-disk pieces
    /// into `plan_pieces` for the effect workers. Returns the completion
    /// time (the decision clock in planning mode, where real completions
    /// come back through the pipeline).
    fn transfer(&mut self, file_idx: usize, offset_units: u64, size_units: u64, kind: IoKind, io: bool) -> SimTime {
        if !io || size_units == 0 {
            return self.clock;
        }
        self.counters.transfers += 1;
        // Reuse one scratch buffer for the extent-map lookup: this runs
        // once per simulated operation and a fresh Vec here dominated the
        // allocator profile.
        let mut runs = std::mem::take(&mut self.runs_scratch);
        self.policy
            .file_map(self.files.policy_id[file_idx])
            // simlint::allow(r3, "file_idx is drawn from the live set on the previous step")
            .unwrap_or_else(|_| unreachable!("transfer targets a live file"))
            .map_range_into(offset_units, size_units, &mut runs);
        if self.planning {
            let mut pieces = std::mem::take(&mut self.plan_pieces);
            let storage = self
                .storage
                .as_shardable()
                // simlint::allow(r3, "run_perf only enables planning after checking as_shardable")
                .unwrap_or_else(|| unreachable!("planning mode on non-shardable storage"));
            for r in &runs {
                storage.plan_pieces(&IoRequest { unit: r.start, units: r.len, kind }, &mut pieces);
            }
            self.plan_pieces = pieces;
            self.plan_bytes = size_units * self.unit_bytes;
            self.runs_scratch = runs;
            return self.clock;
        }
        let mut begin = SimTime::MAX;
        let mut completion = self.clock;
        for r in &runs {
            let span = self.storage.submit(self.clock, &IoRequest { unit: r.start, units: r.len, kind });
            begin = begin.min(span.begin);
            completion = completion.max(span.end);
        }
        self.runs_scratch = runs;
        // Bytes are attributed over the *service* window (when disks
        // actually move them), not the queue window — otherwise many
        // concurrent ops all smeared from their identical issue times
        // would inflate the early measurement intervals.
        self.pending_span = Some((begin.min(completion), completion, size_units * self.unit_bytes));
        completion
    }

    fn do_extend(&mut self, file_idx: usize, mode: Mode) -> (StepOutcome, SimTime) {
        let t = &self.types[self.files.type_idx[file_idx] as usize];
        let bytes = t.sample_rw_bytes(&mut self.rng);
        let delta = self.to_units(bytes);
        if self.ensure_allocated(file_idx, delta).is_err() {
            self.disk_full_events += 1;
            return (StepOutcome::AllocationFailed, self.clock);
        }
        let old_logical = self.files.logical_units[file_idx];
        self.files.logical_units[file_idx] += delta;
        let io = mode != Mode::AllocationOnly;
        let completion = self.transfer(file_idx, old_logical, delta, IoKind::Write, io);
        (StepOutcome::Ran, completion)
    }

    fn do_truncate(&mut self, file_idx: usize) -> StepOutcome {
        let t_units = self.to_units(self.types[self.files.type_idx[file_idx] as usize].truncate_size_bytes);
        let policy_id = self.files.policy_id[file_idx];
        let new_logical = self.files.logical_units[file_idx].saturating_sub(t_units);
        self.files.logical_units[file_idx] = new_logical;
        let allocated = self
            .policy
            .allocated_units(policy_id)
            // simlint::allow(r3, "file_idx is drawn from the live set on the previous step")
            .unwrap_or_else(|_| unreachable!("truncate targets a live file"));
        let reclaimable = allocated.saturating_sub(new_logical);
        if reclaimable > 0 {
            self.policy
                .truncate(policy_id, reclaimable)
                // simlint::allow(r3, "same live file as the allocated_units call above")
                .unwrap_or_else(|_| unreachable!("truncate targets a live file"));
        }
        StepOutcome::Ran
    }

    /// Deletes the file and immediately re-creates it at a fresh initial
    /// size (§3's "create" operation: the live-file population is
    /// stationary). In I/O modes the re-created contents are written out,
    /// which is the "created, read, and deleted" traffic of the TS workload.
    fn do_delete(&mut self, file_idx: usize, mode: Mode) -> (StepOutcome, SimTime) {
        let t_idx = self.files.type_idx[file_idx] as usize;
        self.policy
            .delete(self.files.policy_id[file_idx])
            // simlint::allow(r3, "file_idx is drawn from the live set on the previous step")
            .unwrap_or_else(|_| unreachable!("delete targets a live file"));
        let hints = Self::hints(&self.types[t_idx]);
        let Ok(new_id) = self.policy.create(&hints) else {
            self.disk_full_events += 1;
            // The file is gone and could not be re-registered; retire it.
            self.retire_file(file_idx);
            return (StepOutcome::AllocationFailed, self.clock);
        };
        self.files.policy_id[file_idx] = new_id;
        self.files.logical_units[file_idx] = 0;
        self.files.cursor[file_idx] = 0;
        let target_bytes = self.types[t_idx].sample_initial_bytes(&mut self.rng);
        let target_units = self.to_units(target_bytes);
        self.grow_file(file_idx, target_units);
        let grown = self.files.logical_units[file_idx];
        let io = mode != Mode::AllocationOnly;
        let completion = self.transfer(file_idx, 0, grown, IoKind::Write, io);
        // grow_file logged any disk-full condition and stopped short.
        let outcome = if grown < target_units { StepOutcome::AllocationFailed } else { StepOutcome::Ran };
        (outcome, completion)
    }

    /// Drops a retired file from the per-type selection index in O(1):
    /// the index's last entry is swapped into the vacated slot and its
    /// `pos_in_type` updated to match.
    fn retire_file(&mut self, file_idx: usize) {
        let t_idx = self.files.type_idx[file_idx] as usize;
        let pos = self.files.pos_in_type[file_idx] as usize;
        debug_assert_eq!(
            self.files_by_type[t_idx][pos] as usize,
            file_idx,
            "pos_in_type out of sync"
        );
        self.files_by_type[t_idx].swap_remove(pos);
        if let Some(&moved) = self.files_by_type[t_idx].get(pos) {
            self.files.pos_in_type[moved as usize] = small_u32(pos);
        }
        self.files.live[file_idx] = false;
        self.files.logical_units[file_idx] = 0;
    }

    /// Runs the policy's offline reallocation pass (Koch's nightly
    /// reallocator for the buddy policy), charging no I/O time — the paper
    /// describes it running "at night". Returns the number of units
    /// rewritten, or `None` for policies without a reallocator.
    pub fn run_reallocation(&mut self) -> Option<u64> {
        let mut logical = std::mem::take(&mut self.realloc_scratch);
        logical.clear();
        logical.extend(
            (0..self.files.capacity())
                .filter(|&i| self.files.live[i])
                .map(|i| (self.files.policy_id[i], self.files.logical_units[i])),
        );
        let moved = self
            .policy
            .reallocate(&logical)
            // simlint::allow(r3, "the snapshot filters on f.live immediately above")
            .unwrap_or_else(|_| unreachable!("reallocation snapshot holds only live files"));
        self.realloc_scratch = logical;
        moved
    }

    /// §3's allocation test: "run by performing only the extend, truncate,
    /// delete, and create operations … As soon as the first allocation
    /// request fails, the external and internal fragmentation are computed."
    pub fn run_allocation_test(&mut self) -> FragReport {
        self.reset_latencies();
        self.schedule_users();
        let start_ops = self.ops;
        loop {
            if self.queue.is_empty() || self.ops - start_ops >= self.max_allocation_ops {
                break;
            }
            if self.step(Mode::AllocationOnly, None) == StepOutcome::AllocationFailed {
                break;
            }
        }
        self.fragmentation_report(self.ops - start_ops)
    }

    /// Computes the §3 fragmentation metrics from the current state.
    pub fn fragmentation_report(&self, operations: u64) -> FragReport {
        let mut allocated = 0u64;
        let mut used = 0u64;
        let mut extents = 0usize;
        let mut live = 0u64;
        for i in 0..self.files.capacity() {
            if !self.files.live[i] {
                continue;
            }
            let policy_id = self.files.policy_id[i];
            let a = self
                .policy
                .allocated_units(policy_id)
                // simlint::allow(r3, "the loop skips non-live files two lines up")
                .unwrap_or_else(|_| unreachable!("fragmentation_report visits live files only"));
            allocated += a;
            used += self.files.logical_units[i].min(a);
            extents += self
                .policy
                .allocation_count(policy_id)
                // simlint::allow(r3, "the loop skips non-live files above")
                .unwrap_or_else(|_| unreachable!("fragmentation_report visits live files only"));
            live += 1;
        }
        let internal_pct = if allocated == 0 {
            0.0
        } else {
            100.0 * (allocated - used) as f64 / allocated as f64
        };
        let external_pct = 100.0 * self.policy.free_units() as f64 / self.policy.capacity_units() as f64;
        FragReport {
            internal_pct,
            external_pct,
            live_files: live,
            avg_extents_per_file: if live == 0 { 0.0 } else { extents as f64 / live as f64 },
            utilization: self.utilization(),
            operations,
        }
    }

    /// §3's application performance test: full operation mix, disk held
    /// between N and M full, run until the throughput stabilizes.
    pub fn run_application_test(&mut self) -> PerfReport {
        self.run_perf(Mode::Application)
    }

    /// §3's sequential performance test: "only read and write operations
    /// are performed and each read or write is to an entire file."
    pub fn run_sequential_test(&mut self) -> PerfReport {
        self.run_perf(Mode::Sequential)
    }

    fn run_perf(&mut self, mode: Mode) -> PerfReport {
        self.fill_to_lower_bound();
        // Let any backlog from a previous test drain before measuring, so
        // this test's intervals reflect only its own traffic.
        self.clock = self.clock.max(self.storage.next_idle());
        self.schedule_users();
        let disk_full_before = self.disk_full_events;
        let ops_before = self.ops;
        self.reset_latencies();
        let mut meter = ThroughputMeter::new(self.clock, self.interval);
        // The pipelined path needs real parallelism (≥ 2 workers, capped at
        // the shard count and the u64 routing mask) and a storage layout
        // whose requests decompose into independent per-disk pieces;
        // anything else runs the classic in-line loop.
        let workers = self.shard_workers.min(self.shards).min(64);
        let (stabilized, throughput_pct) =
            if self.shards > 1 && workers > 1 && self.storage.as_shardable().is_some() {
                self.run_perf_pipelined(mode, &mut meter, workers)
            } else {
                self.run_perf_serial(mode, &mut meter)
            };
        self.finish_perf(&meter, stabilized, throughput_pct, ops_before, disk_full_before)
    }

    /// Final p50/p99 of the current measurement. While the exact buffer
    /// held every sample it is authoritative (one in-place sort serves both
    /// percentiles; the buffer is cleared at the start of each measurement
    /// anyway). Once the cap clipped samples, the buffer is a *prefix* of
    /// the run — early samples only, which skews tails badly on workloads
    /// that degrade over time — so the percentiles come from the uncapped
    /// log-bucketed reservoir instead (≤ 1.6 % relative bucket error).
    fn final_percentiles(&mut self) -> (f64, f64) {
        if self.dropped_latencies > 0 {
            (
                self.hist.percentile_us(0.50) as f64 / 1000.0,
                self.hist.percentile_us(0.99) as f64 / 1000.0,
            )
        } else {
            self.latencies.sort_by(f64::total_cmp);
            let p50 = crate::measure::percentile_of_sorted_ms(&self.latencies, 0.50);
            let p99 = crate::measure::percentile_of_sorted_ms(&self.latencies, 0.99);
            (p50, p99)
        }
    }

    /// The shared epilogue of every performance run (plain and
    /// checkpointed): fragmentation probe, final percentiles, and the
    /// assembled report.
    fn finish_perf(
        &mut self,
        meter: &ThroughputMeter,
        stabilized: bool,
        throughput_pct: f64,
        ops_before: u64,
        disk_full_before: u64,
    ) -> PerfReport {
        let end = self.clock.max(meter.last_span_end());
        let frag = self.fragmentation_report(0);
        let (p50, p99) = self.final_percentiles();
        PerfReport {
            throughput_pct,
            max_bandwidth_mb_s: self.max_bw * 1000.0 / (1024.0 * 1024.0),
            throughput_mb_s: throughput_pct / 100.0 * self.max_bw * 1000.0 / (1024.0 * 1024.0),
            stabilized,
            measured_ms: end.since(meter.start_time()).as_ms(),
            bytes_moved: meter.total_bytes() as u64,
            operations: self.ops - ops_before,
            disk_full_events: self.disk_full_events - disk_full_before,
            op_latency_p50_ms: p50,
            op_latency_p99_ms: p99,
            avg_extents_per_file: frag.avg_extents_per_file,
        }
    }

    /// The classic in-line measurement loop: decide and commit each event
    /// on this thread. Returns `(stabilized, throughput_pct)`.
    fn run_perf_serial(&mut self, mode: Mode, meter: &mut ThroughputMeter) -> (bool, f64) {
        let mut steps: u64 = 0;
        while let Some(t_next) = self.queue.peek_time() {
            if let Some(pct) = meter.stabilized(
                t_next,
                self.max_bw,
                self.stabilize_window,
                self.stabilize_tolerance_pct,
            ) {
                return (true, pct);
            }
            if meter.complete_intervals(t_next) >= self.max_intervals {
                return (false, meter.recent_mean_pct(t_next, self.max_bw, self.stabilize_window));
            }
            self.step(mode, Some(&mut *meter));
            steps += 1;
            // "The disk utilization is kept between N and M while
            // measurements are being taken": the upper bound is enforced by
            // extend→truncate conversion; the lower bound by topping the
            // disk back up when deletions drain it (no I/O charged, like
            // the initial fill).
            if steps.is_multiple_of(256) && self.utilization() < self.util_lower - 0.02 {
                self.counters.refill_passes += 1;
                self.fill_to_lower_bound();
            }
        }
        (false, 0.0)
    }

    /// The sharded measurement loop: moves the member disks onto `workers`
    /// scoped threads (worker `w` owns the disks of shards `s` with
    /// `s mod workers == w`, shard `s` owning disks `d` with
    /// `d mod shards == s`), runs the decision stream on this thread, and
    /// joins the disks back afterwards. Bit-identical to the serial loop by
    /// construction — see the `shard` module docs for the argument.
    fn run_perf_pipelined(
        &mut self,
        mode: Mode,
        meter: &mut ThroughputMeter,
        workers: usize,
    ) -> (bool, f64) {
        let shards = self.shards;
        let ndisks = self.storage.ndisks();
        let disks = self
            .storage
            .as_shardable()
            // simlint::allow(r3, "run_perf dispatches here only after as_shardable returned Some")
            .unwrap_or_else(|| unreachable!("pipelined run on non-shardable storage"))
            .take_disks();
        // Full-size Option tables give workers O(1) piece→disk lookup.
        let mut owned: Vec<Vec<Option<Disk>>> =
            (0..workers).map(|_| (0..ndisks).map(|_| None).collect()).collect();
        for (d, disk) in disks.into_iter().enumerate() {
            owned[(d % shards) % workers][d] = Some(disk);
        }
        let chans = EffectChannels::new(workers);
        let mut outcome = (false, 0.0);
        let mut returned: Vec<Vec<Option<Disk>>> = Vec::new();
        std::thread::scope(|scope| {
            // Unwind safety: if the decision loop panics, this guard closes
            // every inbox so the workers exit and the scope's implicit joins
            // finish instead of deadlocking.
            let guard = CloseOnDrop(&chans);
            let handles: Vec<_> = owned
                .drain(..)
                .enumerate()
                .map(|(w, disks_w)| {
                    let inbox = &chans.inboxes[w];
                    let results = &chans.results;
                    scope.spawn(move || {
                        // Symmetric guard: a worker panic marks the result
                        // channel dead so a blocked decision thread fails
                        // fast; disarmed on a normal return.
                        let dead = MarkDeadOnPanic(results);
                        let out = worker_loop(inbox, results, disks_w);
                        std::mem::forget(dead);
                        out
                    })
                })
                .collect();
            outcome = self.pipelined_decision_loop(mode, meter, shards, workers, &chans);
            drop(guard);
            for h in handles {
                match h.join() {
                    Ok(disks_w) => returned.push(disks_w),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        let mut merged: Vec<Option<Disk>> = (0..ndisks).map(|_| None).collect();
        for disks_w in returned {
            for (d, slot) in disks_w.into_iter().enumerate() {
                if let Some(disk) = slot {
                    merged[d] = Some(disk);
                }
            }
        }
        let disks: Vec<Disk> = merged
            .into_iter()
            .map(|slot| match slot {
                Some(d) => d,
                // simlint::allow(r3, "the worker partition covers every disk index exactly once")
                None => unreachable!("a disk was lost in the worker partition"),
            })
            .collect();
        self.storage
            .as_shardable()
            // simlint::allow(r3, "same storage object that returned Some above")
            .unwrap_or_else(|| unreachable!("pipelined run on non-shardable storage"))
            .restore_disks(disks);
        outcome
    }

    /// The decision stream of a pipelined run. Per iteration: (A) commit
    /// until the queue head provably equals the serial loop's next event —
    /// head time `h` must satisfy `h ≤ min(tᵢ + thinkᵢ)` over in-flight
    /// events, the conservative lookahead window (any pending completion
    /// reschedules its user at `≥ tᵢ + thinkᵢ`, and an exact tie loses to
    /// the queued entry on the global sequence number); (B) at each new
    /// measurement-interval boundary, drain the pipeline and evaluate the
    /// stop conditions exactly where the serial loop would (the verdicts
    /// are frozen within an interval: spans added later begin at or after
    /// the head, so completed buckets never change); (C) decide the event
    /// and hand its pieces to the workers; (D) periodic refill, as in the
    /// serial loop.
    fn pipelined_decision_loop(
        &mut self,
        mode: Mode,
        meter: &mut ThroughputMeter,
        shards: usize,
        workers: usize,
        chans: &EffectChannels,
    ) -> (bool, f64) {
        let mut fx = EffectPipeline::new(workers);
        let mut steps: u64 = 0;
        let mut last_eval: Option<usize> = None;
        let mut outcome = (false, 0.0);
        self.planning = true;
        'outer: loop {
            // Opportunistically fold in results that have already arrived
            // and retire the resolved prefix in decision order.
            fx.apply(chans.results.drain_nonblocking());
            while fx.front_resolved() {
                let rec = fx.pop_front();
                self.commit_effect(&rec, meter);
            }
            // (A) Establish the true head under the lookahead window.
            let t_next = loop {
                match self.queue.peek_time() {
                    Some(h) if h <= fx.min_reserve() => break h,
                    Some(_) => self.commit_front_blocking(&mut fx, meter, chans),
                    None if fx.is_empty() => break 'outer,
                    None => self.commit_front_blocking(&mut fx, meter, chans),
                }
            };
            // (B) Interval-boundary checks, evaluated once per interval
            // with the pipeline fully drained so the meter state matches
            // the serial loop's at this head.
            let iv = meter.complete_intervals(t_next);
            if last_eval != Some(iv) {
                while !fx.is_empty() {
                    self.commit_front_blocking(&mut fx, meter, chans);
                }
                if let Some(pct) = meter.stabilized(
                    t_next,
                    self.max_bw,
                    self.stabilize_window,
                    self.stabilize_tolerance_pct,
                ) {
                    outcome = (true, pct);
                    break 'outer;
                }
                if iv >= self.max_intervals {
                    outcome =
                        (false, meter.recent_mean_pct(t_next, self.max_bw, self.stabilize_window));
                    break 'outer;
                }
                last_eval = Some(iv);
            }
            // (C) Decide and dispatch.
            let d = self.decide(mode);
            let bytes = std::mem::take(&mut self.plan_bytes);
            let mut pieces = std::mem::take(&mut self.plan_pieces);
            let rec = EventRec {
                user: d.user,
                t: d.t,
                think_ms: d.think_ms,
                op_ran: d.op_ran,
                bytes,
                begin: SimTime::MAX,
                // Seeded with the decision clock: the serial transfer folds
                // `completion = max(clock, span ends…)`.
                end: d.completion,
                pending: 0,
            };
            fx.admit(rec, d.t + SimDuration::from_ms(d.think_ms), &mut pieces, shards, chans);
            self.plan_pieces = pieces;
            steps += 1;
            // (D) Same refill rule as the serial loop (policy-side only —
            // safe while the disks are out on the workers).
            if steps.is_multiple_of(256) && self.utilization() < self.util_lower - 0.02 {
                self.counters.refill_passes += 1;
                self.fill_to_lower_bound();
            }
        }
        self.planning = false;
        debug_assert!(fx.is_empty(), "every exit path drains the pipeline");
        outcome
    }

    /// Blocks until the oldest in-flight event is fully reported, then
    /// commits it. Flushes staged pieces first — the wait would deadlock on
    /// work the workers never received.
    fn commit_front_blocking(
        &mut self,
        fx: &mut EffectPipeline,
        meter: &mut ThroughputMeter,
        chans: &EffectChannels,
    ) {
        debug_assert!(!fx.is_empty(), "blocking commit with nothing in flight");
        fx.flush(chans);
        while !fx.front_resolved() {
            fx.apply(chans.results.drain_blocking());
        }
        let rec = fx.pop_front();
        self.commit_effect(&rec, meter);
    }

    /// Commits one resolved event exactly as the serial loop would: latency
    /// sample, metered span, and the user's reschedule (which assigns the
    /// next global sequence number — commits run in decision order, so the
    /// numbering matches the serial loop's).
    fn commit_effect(&mut self, rec: &EventRec, meter: &mut ThroughputMeter) {
        let completion = rec.end;
        if rec.op_ran {
            self.record_latency(completion.since(rec.t).as_ms());
        }
        if rec.bytes > 0 {
            meter.add_span(rec.begin.min(completion), completion, rec.bytes);
        }
        self.queue.schedule(completion + SimDuration::from_ms(rec.think_ms), rec.user);
        // clock stays the *decision* clock: the serial loop's clock is the
        // last popped event's time, never a completion time.
    }

    /// Runs the paper's full §3 evaluation for this configuration on three
    /// fresh simulations (so the allocation test's deliberately-filled disk
    /// does not poison the performance tests): allocation, application,
    /// then sequential.
    pub fn run_suite(config: &SimConfig, seed: u64, workload_name: &str) -> SuiteReport {
        let mut alloc_sim = Simulation::new(config, seed);
        let fragmentation = alloc_sim.run_allocation_test();
        let mut perf_sim = Simulation::new(config, seed.wrapping_add(1));
        let application = perf_sim.run_application_test();
        let sequential = perf_sim.run_sequential_test();
        SuiteReport {
            policy: config.policy.family().to_string(),
            workload: workload_name.to_string(),
            fragmentation,
            application,
            sequential,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readopt_alloc::{ExtentConfig, FitStrategy, PolicyConfig};
    use readopt_disk::ArrayConfig;

    /// An extent policy sized for the unit-test workload below (8 KB
    /// extents; the paper-scale 512 KB+ ranges would dwarf 256 KB files).
    fn small_extent_policy() -> PolicyConfig {
        PolicyConfig::Extent(ExtentConfig {
            range_means_bytes: vec![8 * 1024, 64 * 1024],
            fit: FitStrategy::FirstFit,
            sigma_frac: 0.1,
        })
    }

    /// A small, fast configuration: 8 scaled disks (~44 MB), one file type
    /// with the full operation mix (deletes included).
    fn small_config(policy: PolicyConfig) -> SimConfig {
        let array = ArrayConfig::scaled(64);
        let t = FileTypeConfig {
            num_files: 64,
            num_users: 8,
            initial_size_bytes: 256 * 1024,
            initial_deviation_bytes: 64 * 1024,
            ..FileTypeConfig::default()
        };
        let mut c = SimConfig::new(array, policy, vec![t]);
        c.max_intervals = 6;
        c.max_allocation_ops = 3_000_000;
        c
    }

    /// Like [`small_config`] but with deallocations limited to truncates,
    /// so the population drifts upward and the allocation test reaches
    /// disk-full (a delete-recreate population is stationary by design and
    /// would equilibrate below capacity).
    fn fill_config(policy: PolicyConfig) -> SimConfig {
        let mut c = small_config(policy);
        c.file_types[0].delete_fraction = 0.0;
        c.file_types[0].truncate_size_bytes = 8 * 1024;
        c
    }

    #[test]
    fn initialization_reaches_target_sizes() {
        let c = small_config(small_extent_policy());
        let sim = Simulation::new(&c, 1);
        assert_eq!(sim.files.len(), 64);
        for i in 0..sim.files.capacity() {
            assert!(sim.files.logical_units[i] >= (256 - 64) * 1024 / 1024, "file too small");
            assert!(
                sim.policy.allocated_units(sim.files.policy_id[i]).unwrap()
                    >= sim.files.logical_units[i],
                "allocation below logical size"
            );
        }
        sim.policy.check_invariants();
    }

    #[test]
    fn allocation_test_fills_the_disk() {
        let c = fill_config(small_extent_policy());
        let mut sim = Simulation::new(&c, 2);
        let frag = sim.run_allocation_test();
        assert!(frag.utilization > 0.80, "utilization {}", frag.utilization);
        assert!(frag.external_pct < 20.0);
        assert!(frag.internal_pct >= 0.0 && frag.internal_pct <= 100.0);
        assert!(frag.operations > 0);
        sim.policy.check_invariants();
    }

    #[test]
    fn buddy_has_more_internal_fragmentation_than_extent() {
        let cb = fill_config(PolicyConfig::paper_buddy());
        let ce = fill_config(small_extent_policy());
        let fb = Simulation::new(&cb, 3).run_allocation_test();
        let fe = Simulation::new(&ce, 3).run_allocation_test();
        assert!(
            fb.internal_pct > fe.internal_pct,
            "buddy {} vs extent {}",
            fb.internal_pct,
            fe.internal_pct
        );
    }

    #[test]
    fn application_test_reports_throughput() {
        let c = small_config(small_extent_policy());
        let mut sim = Simulation::new(&c, 4);
        let perf = sim.run_application_test();
        assert!(perf.throughput_pct > 0.0, "no throughput measured");
        assert!(perf.throughput_pct <= 100.0 + 1e-6, "throughput {}%", perf.throughput_pct);
        assert!(perf.bytes_moved > 0);
        assert!(perf.operations > 0);
        let util = sim.utilization();
        assert!(util >= 0.85, "utilization window not honoured: {util}");
        sim.policy.check_invariants();
    }

    #[test]
    fn sequential_beats_application_for_contiguous_policies() {
        let c = small_config(small_extent_policy());
        let mut sim = Simulation::new(&c, 5);
        let app = sim.run_application_test();
        let seq = sim.run_sequential_test();
        assert!(
            seq.throughput_pct > app.throughput_pct,
            "sequential {} vs application {}",
            seq.throughput_pct,
            app.throughput_pct
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let c = fill_config(PolicyConfig::paper_restricted());
        let a = Simulation::new(&c, 7).run_allocation_test();
        let b = Simulation::new(&c, 7).run_allocation_test();
        assert_eq!(a, b);
        let x = Simulation::new(&c, 8).run_allocation_test();
        assert!(a != x, "different seeds should (almost surely) differ");
    }

    #[test]
    fn utilization_window_converts_extends() {
        let c = small_config(small_extent_policy());
        let mut sim = Simulation::new(&c, 9);
        let _ = sim.run_application_test();
        // Must never exceed the upper bound by more than one op's worth.
        assert!(sim.utilization() <= 0.97, "utilization {}", sim.utilization());
    }

    #[test]
    fn sequential_test_copes_with_empty_files() {
        // Files whose logical size is zero must not wedge the whole-file
        // test: reads degrade to extends and the run still completes.
        let mut c = small_config(small_extent_policy());
        c.file_types[0].initial_size_bytes = 1; // all files ~empty
        c.file_types[0].initial_deviation_bytes = 0;
        let mut sim = Simulation::new(&c, 31);
        let seq = sim.run_sequential_test();
        assert!(seq.operations > 0);
        sim.policy().check_invariants();
    }

    #[test]
    fn suite_report_displays_headline_numbers() {
        let c = fill_config(small_extent_policy());
        let report = Simulation::run_suite(&c, 10, "demo");
        let text = report.to_string();
        assert!(text.contains("extent / demo"));
        assert!(text.contains("fragmentation:"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn reallocation_is_none_for_policies_without_one() {
        let c = small_config(small_extent_policy());
        let mut sim = Simulation::new(&c, 12);
        assert_eq!(sim.run_reallocation(), None);
        let cb = small_config(PolicyConfig::paper_buddy());
        let mut sim = Simulation::new(&cb, 12);
        let moved = sim.run_reallocation().expect("buddy reallocates");
        assert!(moved > 0);
        sim.policy().check_invariants();
    }

    #[test]
    fn page_aligned_types_issue_single_disk_reads() {
        // 16 KB page-aligned reads against a 24 KB stripe unit: pages at
        // offsets 0/16/32/48 KB… cross a stripe-unit boundary only when
        // they straddle a 24 KB line — but with *unaligned* offsets nearly
        // every read would. Verify alignment reduces physical requests.
        let mut counts = Vec::new();
        for aligned in [true, false] {
            let mut c = small_config(small_extent_policy());
            c.file_types[0].rw_size_bytes = 16 * 1024;
            c.file_types[0].rw_deviation_bytes = 0;
            c.file_types[0].page_aligned = aligned;
            c.file_types[0].read_pct = 80.0;
            c.file_types[0].write_pct = 0.0;
            c.file_types[0].extend_pct = 15.0;
            c.file_types[0].deallocate_pct = 5.0;
            let mut sim = Simulation::new(&c, 21);
            let perf = sim.run_application_test();
            let stats = sim.storage().stats();
            let reqs_per_op = stats.combined().requests as f64 / perf.operations as f64;
            counts.push(reqs_per_op);
        }
        assert!(
            counts[0] < counts[1],
            "aligned {} vs unaligned {} physical requests per op",
            counts[0],
            counts[1]
        );
    }

    /// Regression for the clipped-percentile bug: once the exact latency
    /// buffer hit its cap, p50/p99 were computed over the *prefix* of the
    /// run that fit — so a workload that degrades after the cap reported
    /// tails from its healthy early phase. The fix switches to the uncapped
    /// log-bucketed reservoir whenever samples were dropped.
    #[test]
    fn clipped_latency_tail_comes_from_the_reservoir() {
        let mut c = small_config(small_extent_policy());
        c.latency_sample_cap = 100;
        let mut sim = Simulation::new(&c, 50);
        sim.reset_latencies();
        // 100 fast samples fill the exact buffer, then 900 slow ones
        // overflow: the run degrades *after* the cap, precisely the case
        // the clipped prefix used to hide.
        for _ in 0..100 {
            sim.record_latency(1.0);
        }
        for _ in 0..900 {
            sim.record_latency(250.0);
        }
        assert_eq!(sim.dropped_latencies, 900);
        // The old path — percentiles over the clipped prefix — would have
        // reported a 1 ms p99 for a run whose true p99 is 250 ms.
        let mut prefix = sim.latencies.clone();
        prefix.sort_by(f64::total_cmp);
        assert_eq!(crate::measure::percentile_of_sorted_ms(&prefix, 0.99), 1.0);
        // The fixed path: the reservoir absorbed every sample, so the tail
        // is right (to within its 1.6 % bucket error; exact here because
        // all clipped samples are identical).
        let (p50, p99) = sim.final_percentiles();
        assert!((p50 - 250.0).abs() <= 250.0 / 32.0, "p50 {p50}");
        assert!((p99 - 250.0).abs() <= 250.0 / 32.0, "p99 {p99}");
        // Under the cap, the exact buffer stays authoritative.
        sim.reset_latencies();
        for i in 0..50u8 {
            sim.record_latency(f64::from(i));
        }
        assert_eq!(sim.dropped_latencies, 0);
        let (p50, p99) = sim.final_percentiles();
        assert_eq!((p50, p99), (24.0, 49.0), "exact nearest-rank when nothing dropped");
    }

    #[test]
    fn metrics_snapshot_is_a_pure_read() {
        let c = small_config(small_extent_policy());
        let mut sim = Simulation::new(&c, 40);
        sim.reset_counters();
        sim.storage_reset_for_probe();
        let perf = sim.run_application_test();
        let a = sim.metrics_snapshot("application", perf.measured_ms);
        let b = sim.metrics_snapshot("application", perf.measured_ms);
        assert_eq!(a, b, "snapshotting twice yields identical views");
        assert!(a.engine.events >= a.engine.operations);
        assert!(a.engine.operations > 0);
        assert!(a.engine.transfers > 0);
        assert_eq!(a.storage.per_disk.len(), sim.storage().ndisks());
        for d in &a.storage.per_disk {
            assert!(d.utilization <= 1.0);
            assert!((d.busy_ms - (d.seek_ms + d.rotational_ms + d.transfer_ms)).abs() < 1e-6);
        }
        assert_eq!(a.alloc.frag.free_units, sim.policy().free_units());
    }

    #[test]
    fn metrics_layer_changes_no_results() {
        // The acceptance bar for the observability layer: a run that
        // resets/reads counters and takes snapshots produces the exact
        // same reports as one that never touches the layer.
        let c = small_config(small_extent_policy());
        let mut plain = Simulation::new(&c, 41);
        let p_app = plain.run_application_test();
        let p_seq = plain.run_sequential_test();

        let mut observed = Simulation::new(&c, 41);
        observed.reset_counters();
        observed.storage_reset_for_probe();
        let o_app = observed.run_application_test();
        let _ = observed.metrics_snapshot("application", o_app.measured_ms);
        observed.reset_counters();
        observed.storage_reset_for_probe();
        let o_seq = observed.run_sequential_test();
        let _ = observed.metrics_snapshot("sequential", o_seq.measured_ms);

        assert_eq!(p_app, o_app);
        assert_eq!(p_seq, o_seq);
    }

    /// Asserts `files_by_type` and `pos_in_type` mirror each other exactly
    /// and list precisely the live files.
    fn assert_selection_index_consistent(sim: &Simulation) {
        for (t_idx, idxs) in sim.files_by_type.iter().enumerate() {
            for (pos, &file_idx) in idxs.iter().enumerate() {
                let i = file_idx as usize;
                assert!(sim.files.live[i], "retired file {file_idx} still selectable");
                assert_eq!(
                    sim.files.type_idx[i] as usize,
                    t_idx,
                    "file {file_idx} listed under wrong type"
                );
                assert_eq!(
                    sim.files.pos_in_type[i] as usize,
                    pos,
                    "stale pos_in_type for file {file_idx}"
                );
            }
        }
        let listed: usize = sim.files_by_type.iter().map(Vec::len).sum();
        let live = (0..sim.files.capacity()).filter(|&i| sim.files.live[i]).count();
        assert_eq!(listed, live, "index and live population disagree");
    }

    #[test]
    fn retire_swap_remove_keeps_selection_index_consistent() {
        let c = small_config(small_extent_policy());
        let mut sim = Simulation::new(&c, 17);
        assert_selection_index_consistent(&sim);
        // Retire from the middle, the front, and the back: each swap-remove
        // moves a different entry (or none) into the vacated slot.
        for file_idx in [20, 0, sim.files.capacity() - 1, 21] {
            sim.policy.delete(sim.files.policy_id[file_idx]).unwrap();
            sim.retire_file(file_idx);
            assert!(!sim.files.live[file_idx]);
            assert_selection_index_consistent(&sim);
        }
        // The engine still runs (selection draws only from live files) and
        // retired slots never come back.
        let perf = sim.run_application_test();
        assert!(perf.operations > 0);
        assert_selection_index_consistent(&sim);
    }

    #[test]
    fn retire_last_file_of_a_type_empties_its_index() {
        let mut c = small_config(small_extent_policy());
        c.file_types[0].num_files = 1;
        let mut sim = Simulation::new(&c, 18);
        sim.policy.delete(sim.files.policy_id[0]).unwrap();
        sim.retire_file(0);
        assert!(sim.files_by_type[0].is_empty());
        assert_selection_index_consistent(&sim);
        // Stepping with an empty population must not panic or select.
        let seq = sim.run_sequential_test();
        assert_eq!(seq.operations, 0);
    }

    #[test]
    fn suite_produces_full_report() {
        let c = fill_config(PolicyConfig::fixed_4k());
        let report = Simulation::run_suite(&c, 10, "unit-test");
        assert_eq!(report.policy, "fixed");
        assert_eq!(report.workload, "unit-test");
        assert!(report.sequential.throughput_pct > 0.0);
    }
}
