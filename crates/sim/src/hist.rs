//! hdr-histogram-style log-bucketed latency reservoir.
//!
//! [`PerfReport`](crate::results::PerfReport)'s p50/p99 come from an exact
//! sample buffer that caps at 200 k entries — past the cap (million-user
//! rungs) the tail percentiles are computed over a silently clipped prefix.
//! [`LatencyReservoir`] is the compact companion: fixed-size log-linear
//! buckets over integer microseconds, so it absorbs *every* sample at O(1)
//! cost and yields p50/p90/p99/p99.9 with a bounded relative error of
//! 1/64 ≈ 1.6 % (64 sub-buckets per power of two, the hdrhistogram idiom).
//!
//! Recording is pure integer arithmetic on a dense `Vec<u64>`; the
//! serializable [`TestHist`] snapshot stores only the non-empty buckets, so
//! the `*.hist.json` artifact stays small and — because bucket indexes and
//! counts are integers — byte-identical across process boundaries.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: 2^6 = 64 linear sub-buckets per power of two.
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the full u64 microsecond range: values below
/// `SUB` get exact unit buckets, every later power of two gets `SUB`
/// sub-buckets (58 exponent groups × 64 + the exact prefix).
const N_BUCKETS: usize = (58 + 1) * SUB as usize;

/// Maps a microsecond value to its bucket index. Monotone non-decreasing
/// and continuous: values below `SUB` are exact; above, the bucket spans
/// `2^exp` microseconds starting at `(mantissa + SUB) << exp`.
fn bucket_index(us: u64) -> usize {
    if us < SUB {
        return us as usize;
    }
    let bits = 64 - us.leading_zeros();
    let exp = bits - (SUB_BITS + 1);
    let mantissa = (us >> exp) - SUB;
    (exp as usize + 1) * SUB as usize + mantissa as usize
}

/// The largest microsecond value a bucket holds (its inclusive upper edge).
fn bucket_high_us(index: usize) -> u64 {
    let idx = index as u64;
    if idx < SUB {
        return idx;
    }
    let exp = idx / SUB - 1;
    let mantissa = idx % SUB;
    ((mantissa + SUB) << exp) + (1u64 << exp) - 1
}

/// A fixed-footprint log-bucketed latency accumulator (microsecond grain).
#[derive(Debug, Clone)]
pub struct LatencyReservoir {
    counts: Vec<u64>,
    count: u64,
    max_us: u64,
}

impl Default for LatencyReservoir {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyReservoir {
    /// An empty reservoir (one dense allocation, reused via [`Self::reset`]).
    pub fn new() -> Self {
        LatencyReservoir { counts: vec![0; N_BUCKETS], count: 0, max_us: 0 }
    }

    /// Forgets every recorded sample without releasing the bucket storage.
    pub fn reset(&mut self) {
        if self.count > 0 {
            self.counts.fill(0);
        }
        self.count = 0;
        self.max_us = 0;
    }

    /// Records one latency in integer microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Records one latency in (simulated) milliseconds, rounded to the
    /// microsecond grain. Negative or non-finite inputs clamp to zero —
    /// simulated durations are non-negative by construction, so the clamp
    /// only defends the artifact against NaN poisoning.
    pub fn record_ms(&mut self, ms: f64) {
        let us = (ms * 1000.0).round();
        // f64 → u64 `as` casts saturate (NaN → 0), exactly the clamp wanted.
        self.record_us(if us.is_finite() { us.max(0.0) as u64 } else { 0 });
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank percentile in microseconds (`q` in (0, 1]): the upper
    /// edge of the bucket holding the rank-th sample, clamped to the exact
    /// observed maximum. Returns 0 when empty, matching
    /// [`crate::measure::percentile_of_sorted_ms`]'s empty-input behavior.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil()).max(1.0).min(self.count as f64) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high_us(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Serializable snapshot with derived percentiles. `dropped` is the
    /// caller's count of samples its *exact* buffer clipped (this reservoir
    /// itself never drops); it rides along so artifact readers can see when
    /// the exact p99 in `PerfReport` was computed over a truncated prefix.
    pub fn snapshot(&self, test: &str, dropped: u64) -> TestHist {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| HistBucket { index: i as u64, count: c })
            .collect();
        TestHist {
            test: test.to_string(),
            count: self.count,
            dropped,
            p50_ms: self.percentile_us(0.50) as f64 / 1000.0,
            p90_ms: self.percentile_us(0.90) as f64 / 1000.0,
            p99_ms: self.percentile_us(0.99) as f64 / 1000.0,
            p999_ms: self.percentile_us(0.999) as f64 / 1000.0,
            max_ms: self.max_us as f64 / 1000.0,
            buckets,
        }
    }
}

impl serde::Serialize for LatencyReservoir {
    /// Checkpoint form: `{count, max_us, buckets}` with the same sparse
    /// bucket encoding as [`TestHist`] — empty buckets are omitted, so a
    /// snapshot's size scales with the spread of observed latencies, not
    /// with `N_BUCKETS`.
    fn to_value(&self) -> serde::Value {
        let buckets: Vec<HistBucket> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| HistBucket { index: i as u64, count: c })
            .collect();
        serde::Value::Object(vec![
            ("count".to_string(), self.count.to_value()),
            ("max_us".to_string(), self.max_us.to_value()),
            ("buckets".to_string(), buckets.to_value()),
        ])
    }
}

impl serde::Deserialize for LatencyReservoir {
    /// Rebuilds the dense reservoir and **validates** the snapshot: bucket
    /// indexes must be in range and strictly ascending, their counts must
    /// sum to `count`, and an empty reservoir must claim no maximum —
    /// anything else means the checkpoint bytes are corrupt and resuming
    /// from them would silently skew every later percentile.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let count: u64 = serde::de_field(v, "count")?;
        let max_us: u64 = serde::de_field(v, "max_us")?;
        let sparse: Vec<HistBucket> = serde::de_field(v, "buckets")?;
        let corrupt = |why: String| serde::Error::msg(format!("corrupt reservoir snapshot: {why}"));
        let mut r = LatencyReservoir::new();
        let mut sum = 0u64;
        let mut last: Option<u64> = None;
        for b in &sparse {
            if b.index >= N_BUCKETS as u64 {
                return Err(corrupt(format!("bucket index {} out of range", b.index)));
            }
            if last.is_some_and(|p| p >= b.index) {
                return Err(corrupt(format!("bucket indexes not ascending at {}", b.index)));
            }
            if b.count == 0 {
                return Err(corrupt(format!("empty bucket {} stored explicitly", b.index)));
            }
            last = Some(b.index);
            sum = sum
                .checked_add(b.count)
                .ok_or_else(|| corrupt("bucket counts overflow u64".to_string()))?;
            r.counts[b.index as usize] = b.count;
        }
        if sum != count {
            return Err(corrupt(format!("bucket counts sum to {sum}, header says {count}")));
        }
        if count == 0 && max_us != 0 {
            return Err(corrupt(format!("empty reservoir claims max_us {max_us}")));
        }
        if count > 0 && last.map_or(true, |l| l != bucket_index(max_us) as u64) {
            return Err(corrupt(format!("max_us {max_us} not in the last non-empty bucket")));
        }
        r.count = count;
        r.max_us = max_us;
        Ok(r)
    }
}

/// One non-empty bucket of a [`TestHist`] (sparse encoding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistBucket {
    /// Dense bucket index (see `bucket_index`); decode with the same
    /// `SUB_BITS = 6` log-linear scheme.
    pub index: u64,
    /// Samples that landed in this bucket.
    pub count: u64,
}

/// Serialized latency histogram for one test of one sweep point.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TestHist {
    /// Which §3 test the samples came from ("application", "sequential",
    /// "allocation", …).
    pub test: String,
    /// Total samples recorded (never clipped).
    pub count: u64,
    /// Samples the engine's exact 200 k latency buffer dropped — when this
    /// is non-zero, the `PerfReport` p50/p99 were computed over a truncated
    /// prefix and these bucketed percentiles are the trustworthy ones.
    pub dropped: u64,
    /// Median operation latency, ms (≤ 1.6 % relative bucket error).
    pub p50_ms: f64,
    /// 90th-percentile latency, ms.
    pub p90_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, ms.
    pub p999_ms: f64,
    /// Exact maximum recorded latency, ms.
    pub max_ms: f64,
    /// Non-empty buckets in ascending index order.
    pub buckets: Vec<HistBucket>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut last = 0usize;
        for us in 0..100_000u64 {
            let i = bucket_index(us);
            assert!(i >= last, "index regressed at {us}: {i} < {last}");
            assert!(i <= last + 1, "index skipped at {us}: {last} -> {i}");
            assert!(us <= bucket_high_us(i), "{us} above its bucket edge");
            last = i;
        }
        // Full-range values stay in bounds.
        for us in [u64::MAX, u64::MAX / 2, 1 << 62] {
            assert!(bucket_index(us) < N_BUCKETS);
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        for us in 0..SUB {
            let i = bucket_index(us);
            assert_eq!(i as u64, us);
            assert_eq!(bucket_high_us(i), us);
        }
    }

    #[test]
    fn percentiles_track_exact_within_bucket_error() {
        let mut r = LatencyReservoir::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut rng = crate::SimRng::new(42);
        for _ in 0..10_000 {
            // Log-uniform-ish spread across five decades.
            let decade = rng.uniform_u64(0, 5) as u32;
            let us = rng.uniform_u64(1, 10u64.pow(decade + 1));
            r.record_us(us);
            exact.push(us);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let want = exact[rank - 1];
            let got = r.percentile_us(q);
            assert!(got >= want, "p{q}: bucketed {got} below exact {want}");
            assert!(
                got as f64 <= want as f64 * (1.0 + 1.0 / 32.0) + 1.0,
                "p{q}: bucketed {got} too far above exact {want}"
            );
        }
    }

    #[test]
    fn snapshot_is_sparse_and_roundtrips() {
        let mut r = LatencyReservoir::new();
        for us in [5u64, 5, 5, 70_000, 70_001] {
            r.record_us(us);
        }
        let h = r.snapshot("application", 2);
        assert_eq!(h.count, 5);
        assert_eq!(h.dropped, 2);
        assert!(h.buckets.len() <= 3, "sparse: {:?}", h.buckets);
        let total: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 5);
        assert!((h.p50_ms - 0.005).abs() < 1e-9);
        assert!(h.max_ms >= 70.0 && h.max_ms <= 70.002);
        let json = serde_json::to_string(&h).ok();
        let json = json.as_deref().filter(|s| !s.is_empty());
        let back: Option<TestHist> = json.and_then(|j| serde_json::from_str(j).ok());
        assert_eq!(back.as_ref(), Some(&h), "snapshot must JSON-roundtrip exactly");
    }

    #[test]
    fn checkpoint_roundtrips_and_rejects_corruption() {
        let mut r = LatencyReservoir::new();
        let mut rng = crate::SimRng::new(11);
        for _ in 0..5_000 {
            r.record_us(rng.uniform_u64(1, 5_000_000));
        }
        let v = r.to_value();
        let back = LatencyReservoir::from_value(&v).expect("clean snapshot");
        assert_eq!(back.count(), r.count());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(back.percentile_us(q), r.percentile_us(q));
        }
        // Empty reservoirs roundtrip too.
        let empty = LatencyReservoir::from_value(&LatencyReservoir::new().to_value()).unwrap();
        assert_eq!(empty.count(), 0);

        // Tamper: bucket counts no longer sum to the header count.
        let mut bad = v.clone();
        if let serde::Value::Object(pairs) = &mut bad {
            pairs[0].1 = (r.count() + 1).to_value();
        }
        assert!(LatencyReservoir::from_value(&bad).is_err(), "count mismatch");
        // Tamper: out-of-range bucket index.
        let mut bad = v.clone();
        if let serde::Value::Object(pairs) = &mut bad {
            if let serde::Value::Array(buckets) = &mut pairs[2].1 {
                if let serde::Value::Object(b) = &mut buckets[0] {
                    b[0].1 = (N_BUCKETS as u64).to_value();
                }
            }
        }
        assert!(LatencyReservoir::from_value(&bad).is_err(), "index out of range");
        // Tamper: max_us outside the last non-empty bucket.
        let mut bad = v;
        if let serde::Value::Object(pairs) = &mut bad {
            pairs[1].1 = u64::MAX.to_value();
        }
        assert!(LatencyReservoir::from_value(&bad).is_err(), "max_us inconsistent");
    }

    #[test]
    fn reset_and_empty_behavior() {
        let mut r = LatencyReservoir::new();
        assert_eq!(r.percentile_us(0.99), 0);
        assert_eq!(r.count(), 0);
        r.record_ms(1.5);
        r.record_ms(f64::NAN);
        assert_eq!(r.count(), 2);
        r.reset();
        assert_eq!(r.count(), 0);
        assert_eq!(r.snapshot("t", 0).buckets.len(), 0);
    }

    #[test]
    fn ms_rounding_lands_on_the_microsecond_grain() {
        let mut r = LatencyReservoir::new();
        r.record_ms(0.0124); // 12.4 µs → 12
        r.record_ms(0.0126); // 12.6 µs → 13
        let h = r.snapshot("t", 0);
        assert_eq!(h.buckets.len(), 2);
        assert_eq!(h.buckets[0].index, 12);
        assert_eq!(h.buckets[1].index, 13);
    }
}
