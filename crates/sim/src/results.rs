//! Serializable experiment reports.

use serde::{Deserialize, Serialize};

/// Outcome of an allocation test (§3): fragmentation at first failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragReport {
    /// "Internal fragmentation is the amount of space allocated to files,
    /// but not being used by the file … expressed as a percentage of the
    /// total allocated space."
    pub internal_pct: f64,
    /// "External fragmentation is the amount of space still available in
    /// the disk system when a request cannot be serviced … expressed as a
    /// percentage of the total available disk space."
    pub external_pct: f64,
    /// Live files at the time of failure.
    pub live_files: u64,
    /// Mean extents per live file (Table 4's statistic).
    pub avg_extents_per_file: f64,
    /// Fraction of capacity in use when the failing request arrived.
    pub utilization: f64,
    /// Operations executed before the failure.
    pub operations: u64,
}

/// Outcome of an application or sequential performance test (§3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Throughput as a percentage of the calibrated maximum sequential
    /// bandwidth of the disk system.
    pub throughput_pct: f64,
    /// The calibrated maximum, in MB/s, for absolute context.
    pub max_bandwidth_mb_s: f64,
    /// Absolute throughput in MB/s.
    pub throughput_mb_s: f64,
    /// Whether the paper's stabilization rule fired (vs the time cap).
    pub stabilized: bool,
    /// Simulated milliseconds of measurement.
    pub measured_ms: f64,
    /// Logical bytes moved during measurement.
    pub bytes_moved: u64,
    /// Operations completed during measurement.
    pub operations: u64,
    /// Allocation failures logged ("disk full condition") during the run.
    pub disk_full_events: u64,
    /// Median per-operation latency (issue → completion), ms.
    pub op_latency_p50_ms: f64,
    /// 99th-percentile per-operation latency, ms.
    pub op_latency_p99_ms: f64,
    /// Mean extents per live file at the end of the run.
    pub avg_extents_per_file: f64,
}

/// The full §3 evaluation of one (policy, workload) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Policy name.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Allocation-test fragmentation.
    pub fragmentation: FragReport,
    /// Application performance.
    pub application: PerfReport,
    /// Sequential performance.
    pub sequential: PerfReport,
}

impl std::fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} / {}:", self.policy, self.workload)?;
        writeln!(
            f,
            "  fragmentation: {:.1} % internal, {:.1} % external (at {:.1} % utilization)",
            self.fragmentation.internal_pct,
            self.fragmentation.external_pct,
            100.0 * self.fragmentation.utilization
        )?;
        writeln!(
            f,
            "  application:   {:.1} % of max ({:.2} MB/s), p50 {:.1} ms, p99 {:.1} ms",
            self.application.throughput_pct,
            self.application.throughput_mb_s,
            self.application.op_latency_p50_ms,
            self.application.op_latency_p99_ms
        )?;
        writeln!(
            f,
            "  sequential:    {:.1} % of max ({:.2} MB/s)",
            self.sequential.throughput_pct, self.sequential.throughput_mb_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_serialize() {
        let f = FragReport {
            internal_pct: 12.5,
            external_pct: 3.0,
            live_files: 10,
            avg_extents_per_file: 2.5,
            utilization: 0.97,
            operations: 1000,
        };
        let json = serde_json::to_string(&f).unwrap();
        let back: FragReport = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
