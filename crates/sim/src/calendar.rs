//! Calendar-queue event scheduling: O(1) amortized insert/pop.
//!
//! The binary heap behind [`crate::event::EventQueue`] costs O(log n) per
//! operation — 20 cache-missing levels at a million pending events. This
//! module provides the alternative backend: a **sliding calendar queue**
//! (Brown 1988 / timing-wheel family) with
//!
//! * a *wheel* of `B` buckets, bucket `b` holding the events whose time
//!   falls in `[day_start + b·width, day_start + (b+1)·width)`;
//! * an *overflow* level (an ordinary binary heap) for events at or past
//!   the wheel's horizon, drained back into the wheel as the cursor
//!   advances (a two-level hierarchy: near events O(1), far events pay the
//!   log only when they are actually near);
//! * *adaptive* geometry: the bucket count tracks the population (doubling
//!   / quartering with hysteresis) and the bucket width tracks the
//!   observed inter-pop gap, so steady-state occupancy stays O(1) per
//!   bucket across wildly different event densities. The width is
//!   re-tracked on pops too (not just at population-triggered rebuilds):
//!   a queue whose population is constant — every pop matched by a
//!   reschedule, the `users_1e6` steady state — would otherwise keep the
//!   geometry chosen during its fill phase forever, scanning long
//!   chains on every pop.
//!
//! Event records live in an [`EventArena`] — a slab with an intrusive
//! free-list, so scheduling allocates nothing per event and bucket chains
//! are `u32` links through one contiguous allocation instead of boxed
//! nodes scattered over the heap.
//!
//! # Determinism contract
//!
//! `pop` returns events in **exactly** the order the binary heap would:
//! ascending `(time, seq, user)`. The argument:
//!
//! * the wheel's buckets partition an increasing time range, and every
//!   wheel event time is strictly below every overflow event time (the
//!   horizon separates them), so the first non-empty bucket at or after
//!   the cursor contains the global minimum;
//! * events with equal times always land in the same bucket, and the
//!   bucket scan selects the minimum by the *full* `(time, seq, user)`
//!   key — the heap's exact tie-break;
//! * all arithmetic saturates, so far-future sentinels (`SimTime::MAX`)
//!   are ordered correctly from the overflow level.

use crate::event::{Event, UserId};
use readopt_disk::SimTime;
use serde::{de_field, Deserialize, Error, Serialize, Value};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Null link terminating bucket chains and the arena free-list.
const NIL: u32 = u32::MAX;

/// Smallest wheel the adaptive resize will shrink to.
const MIN_BUCKETS: usize = 64;

/// Largest wheel the adaptive resize will grow to (4 Mi buckets — 16 MiB
/// of links, sized for the `users_1e6` workload family).
const MAX_BUCKETS: usize = 1 << 22;

/// Widest bucket the gap estimator may choose (2^40 µs ≈ 12.7 days of
/// simulated time per bucket) — keeps `1 << shift` far from overflow.
const MAX_SHIFT: u32 = 40;

/// Wheel-sizing slack: buckets per pending event. With the bucket width
/// tracking the inter-pop gap, the horizon covers ~`BUCKETS_PER_EVENT`×
/// the pending-time span, so a steady-state reschedule (`now` + one
/// think time) usually lands inside the wheel at O(1) instead of
/// transiting the overflow heap at O(log n). Costs one extra sequential
/// cursor visit per pop per factor of slack — far cheaper.
const BUCKETS_PER_EVENT: usize = 4;

/// Generation-checked handle into an [`EventArena`] slot.
///
/// Handles are only minted by [`EventArena::insert`]; a handle whose slot
/// has since been freed (or freed and reused) no longer resolves. The
/// generation parity encodes occupancy — odd while the slot is live, even
/// while it sits on the free-list — so a stale handle can never alias a
/// reused slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventHandle {
    /// Slot index.
    pub index: u32,
    /// Generation the slot had when the handle was minted (odd = live).
    pub generation: u32,
}

/// One event record, read back through [`EventArena::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Scheduled time.
    pub time: SimTime,
    /// Global schedule sequence number (the tie-break after time).
    pub seq: u64,
    /// Acting user.
    pub user: u32,
}

/// Slab allocator for pending-event records: parallel arrays indexed by
/// `u32` slot, with an intrusive free-list threaded through `next`.
///
/// The calendar queue links bucket chains through the same `next` field,
/// so one contiguous arena holds every pending event — no per-event `Box`,
/// no pointer chasing across the allocator's whims. The public API is
/// generation-checked ([`EventHandle`]); the queue uses the raw
/// crate-internal accessors on indices it owns.
#[derive(Debug, Clone, PartialEq)]
pub struct EventArena {
    /// Scheduled times, one per slot.
    times: Vec<SimTime>,
    /// Global sequence numbers, one per slot.
    seqs: Vec<u64>,
    /// Acting users, one per slot.
    users: Vec<u32>,
    /// Intrusive link: bucket chain while live, free-list while free.
    next: Vec<u32>,
    /// Slot generations; odd = live, even = free.
    gen: Vec<u32>,
    /// Head of the free-list (`NIL` when every slot is live).
    free_head: u32,
    /// Number of live slots.
    live: usize,
}

impl Default for EventArena {
    fn default() -> Self {
        EventArena {
            times: Vec::new(),
            seqs: Vec::new(),
            users: Vec::new(),
            next: Vec::new(),
            gen: Vec::new(),
            free_head: NIL,
            live: 0,
        }
    }
}

impl EventArena {
    /// An empty arena.
    pub fn new() -> Self {
        EventArena::default()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free-listed).
    pub fn capacity(&self) -> usize {
        self.times.len()
    }

    /// Allocates a record, reusing the most recently freed slot first.
    /// Returns a generation-checked handle.
    pub fn insert(&mut self, time: SimTime, seq: u64, user: u32) -> EventHandle {
        let index = self.alloc(time, seq, user);
        EventHandle { index, generation: self.gen[index as usize] }
    }

    /// Reads a record back; `None` once the slot has been freed (stale
    /// handles never resolve, even after the slot is reused).
    pub fn get(&self, h: EventHandle) -> Option<EventRecord> {
        let i = h.index as usize;
        if i < self.gen.len() && self.gen[i] == h.generation && h.generation % 2 == 1 {
            Some(EventRecord { time: self.times[i], seq: self.seqs[i], user: self.users[i] })
        } else {
            None
        }
    }

    /// Frees the record behind `h`. Returns `false` (and does nothing) for
    /// a stale or never-valid handle.
    pub fn remove(&mut self, h: EventHandle) -> bool {
        if self.get(h).is_none() {
            return false;
        }
        self.free(h.index);
        true
    }

    /// Raw allocation for the queue's hot path: pops the free-list or
    /// grows the slab. The returned slot's `next` is `NIL`.
    pub(crate) fn alloc(&mut self, time: SimTime, seq: u64, user: u32) -> u32 {
        if self.free_head != NIL {
            let i = self.free_head;
            let iu = i as usize;
            self.free_head = self.next[iu];
            self.times[iu] = time;
            self.seqs[iu] = seq;
            self.users[iu] = user;
            self.next[iu] = NIL;
            self.gen[iu] = self.gen[iu].wrapping_add(1); // even → odd: live
            self.live += 1;
            return i;
        }
        let i = u32::try_from(self.times.len())
            // simlint::allow(r3, "4 billion concurrently pending events exceeds any addressable workload; the slab reuses slots long before this")
            .unwrap_or_else(|_| unreachable!("event arena exceeds u32 slots"));
        self.times.push(time);
        self.seqs.push(seq);
        self.users.push(user);
        self.next.push(NIL);
        self.gen.push(1); // first generation: live
        self.live += 1;
        i
    }

    /// Raw free for the queue's hot path: pushes the slot onto the
    /// free-list and flips its generation to even (invalidating handles).
    pub(crate) fn free(&mut self, i: u32) {
        let iu = i as usize;
        debug_assert!(self.gen[iu] % 2 == 1, "double free of arena slot {i}");
        self.gen[iu] = self.gen[iu].wrapping_add(1); // odd → even: free
        self.next[iu] = self.free_head;
        self.free_head = i;
        self.live -= 1;
    }

    /// Time of slot `i` (queue-internal; `i` must be live).
    pub(crate) fn time(&self, i: u32) -> SimTime {
        self.times[i as usize]
    }

    /// Sequence number of slot `i` (queue-internal; `i` must be live).
    pub(crate) fn seq(&self, i: u32) -> u64 {
        self.seqs[i as usize]
    }

    /// User of slot `i` (queue-internal; `i` must be live).
    pub(crate) fn user(&self, i: u32) -> u32 {
        self.users[i as usize]
    }

    /// Chain link of slot `i` (queue-internal; `i` must be live).
    pub(crate) fn next(&self, i: u32) -> u32 {
        self.next[i as usize]
    }

    /// Rewrites the chain link of slot `i` (queue-internal).
    pub(crate) fn set_next(&mut self, i: u32, n: u32) {
        self.next[i as usize] = n;
    }

    /// Drops every record and every free-listed slot (queue-internal:
    /// rebuilds re-insert from scratch; outstanding public handles are
    /// not expected across a clear).
    pub(crate) fn clear(&mut self) {
        self.times.clear();
        self.seqs.clear();
        self.users.clear();
        self.next.clear();
        self.gen.clear();
        self.free_head = NIL;
        self.live = 0;
    }

    /// Consistency check used by the serde load path (and tests): parallel
    /// array lengths agree, the free-list is acyclic, in bounds, visits
    /// exactly the even-generation slots, and the live count matches.
    fn validate(&self) -> Result<(), String> {
        let n = self.times.len();
        if self.seqs.len() != n || self.users.len() != n || self.next.len() != n || self.gen.len() != n {
            return Err("parallel arrays disagree on length".into());
        }
        let free_slots = n.checked_sub(self.live).ok_or("live count exceeds slot count")?;
        let mut seen = vec![false; n];
        let mut walked = 0usize;
        let mut i = self.free_head;
        while i != NIL {
            let iu = i as usize;
            if iu >= n {
                return Err(format!("free-list index {i} out of bounds"));
            }
            if seen[iu] {
                return Err(format!("free-list cycle through slot {i}"));
            }
            if self.gen[iu] % 2 == 1 {
                return Err(format!("live slot {i} on the free-list"));
            }
            seen[iu] = true;
            walked += 1;
            if walked > n {
                return Err("free-list longer than the slab".into());
            }
            i = self.next[iu];
        }
        if walked != free_slots {
            return Err(format!("free-list holds {walked} slots, expected {free_slots}"));
        }
        for (idx, g) in self.gen.iter().enumerate() {
            if g % 2 == 0 && !seen[idx] {
                return Err(format!("free slot {idx} missing from the free-list"));
            }
        }
        Ok(())
    }
}

impl Serialize for EventArena {
    fn to_value(&self) -> Value {
        // Everything here is ground truth (the free-list order determines
        // future slot reuse, so `next`/`free_head` must round-trip
        // exactly); nothing is derived.
        Value::Object(vec![
            ("times".to_string(), self.times.to_value()),
            ("seqs".to_string(), self.seqs.to_value()),
            ("users".to_string(), self.users.to_value()),
            ("next".to_string(), self.next.to_value()),
            ("gen".to_string(), self.gen.to_value()),
            ("free_head".to_string(), self.free_head.to_value()),
            ("live".to_string(), self.live.to_value()),
        ])
    }
}

impl Deserialize for EventArena {
    /// Reconstructs the arena and **validates** it: mismatched parallel
    /// arrays, a cyclic or out-of-bounds free-list, or a live count that
    /// disagrees with the generation parities is rejected loudly instead
    /// of corrupting slot reuse later.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arena = EventArena {
            times: de_field(v, "times")?,
            seqs: de_field(v, "seqs")?,
            users: de_field(v, "users")?,
            next: de_field(v, "next")?,
            gen: de_field(v, "gen")?,
            free_head: de_field(v, "free_head")?,
            live: de_field(v, "live")?,
        };
        arena
            .validate()
            .map_err(|why| Error::msg(format!("corrupt EventArena snapshot: {why}")))?;
        Ok(arena)
    }
}

/// The calendar-queue backend (see the module docs for the design and the
/// determinism argument).
#[derive(Debug)]
pub struct CalendarQueue {
    arena: EventArena,
    /// Bucket chain heads (`NIL` = empty). Length is always a power of two.
    buckets: Vec<u32>,
    /// Lowest bucket index that may be non-empty; only ever lowered by an
    /// insert into an earlier bucket, otherwise advances monotonically.
    cursor: usize,
    /// Time (µs) of bucket 0's left edge.
    day_start: u64,
    /// log2 of the bucket width in µs.
    shift: u32,
    /// Events currently in wheel buckets (the rest sit in `overflow`).
    wheel_len: usize,
    /// Far-future events: everything at or past the horizon.
    overflow: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Total pending events.
    len: usize,
    /// Last popped time (µs), for the gap estimator.
    last_pop_us: u64,
    /// Exponential moving average of inter-pop gaps in 8.8-style fixed
    /// point (µs × 256, ≥ 256) — the deterministic density signal that
    /// sizes bucket widths. Fixed point matters: at a 1/64 EWMA weight an
    /// integer-µs average would lose ~0.5 µs to truncation per update,
    /// which outweighs the `(gap − avg)/64` pull for gaps under ~64 µs
    /// and collapses the estimate to the floor.
    avg_gap_q8: u64,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    /// An empty queue with the minimum wheel.
    pub fn new() -> Self {
        CalendarQueue {
            arena: EventArena::new(),
            buckets: vec![NIL; MIN_BUCKETS],
            cursor: 0,
            day_start: 0,
            shift: 10, // 1.024 ms buckets until the gap estimator has data
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            last_pop_us: 0,
            avg_gap_q8: 1024 << 8,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First µs past the wheel's coverage (saturating; events at or past
    /// it live in the overflow heap).
    fn horizon(&self) -> u64 {
        let width = 1u64 << self.shift;
        self.day_start.saturating_add((self.buckets.len() as u64).saturating_mul(width))
    }

    /// Bucket width exponent for an observed inter-pop gap: the largest
    /// power of two at or below the gap, clamped to the supported range.
    fn shift_for_gap(gap_us: u64) -> u32 {
        (63 - gap_us.max(1).leading_zeros()).min(MAX_SHIFT)
    }

    /// Wheel size for a population: [`BUCKETS_PER_EVENT`] buckets per
    /// pending event, clamped and rounded to a power of two.
    fn target_buckets(len: usize) -> usize {
        len.saturating_mul(BUCKETS_PER_EVENT).clamp(MIN_BUCKETS, MAX_BUCKETS).next_power_of_two()
    }

    /// Schedules `(time, seq, user)`.
    pub fn insert(&mut self, time: SimTime, seq: u64, user: u32) {
        let t = time.as_us();
        if t < self.day_start {
            // Behind the wheel (only adversarial schedules do this — the
            // engine's clock is monotone): rebuild anchored at the new
            // minimum. O(n), amortized away by its rarity.
            self.len += 1;
            self.rebuild(Some((time, seq, user)));
            return;
        }
        if t >= self.horizon() {
            self.overflow.push(Reverse((time, seq, user)));
        } else {
            self.place_in_wheel(time, seq, user);
        }
        self.len += 1;
        if Self::target_buckets(self.len) > self.buckets.len() {
            self.rebuild(None);
        }
    }

    /// Links an in-horizon event into its bucket. Caller guarantees
    /// `day_start ≤ time < horizon`.
    fn place_in_wheel(&mut self, time: SimTime, seq: u64, user: u32) {
        let b = ((time.as_us() - self.day_start) >> self.shift) as usize;
        debug_assert!(b < self.buckets.len(), "bucket index past the horizon");
        let i = self.arena.alloc(time, seq, user);
        self.arena.set_next(i, self.buckets[b]);
        self.buckets[b] = i;
        if b < self.cursor {
            self.cursor = b;
        }
        self.wheel_len += 1;
    }

    /// Advances the cursor to the first non-empty bucket. Caller
    /// guarantees `wheel_len > 0`; the cursor invariant (no wheel event
    /// below it) makes that bucket hold the global wheel minimum.
    fn advance_cursor(&mut self) {
        while self.cursor < self.buckets.len() && self.buckets[self.cursor] == NIL {
            self.cursor += 1;
        }
        debug_assert!(self.cursor < self.buckets.len(), "wheel_len > 0 but no bucket found");
    }

    /// Index of the minimum-key event in the cursor bucket, with its
    /// predecessor in the chain (`NIL` when the minimum is the head).
    fn min_in_cursor_bucket(&self) -> (u32, u32) {
        let head = self.buckets[self.cursor];
        debug_assert_ne!(head, NIL, "cursor bucket is empty");
        let mut best = head;
        let mut best_prev = NIL;
        let mut best_key = (self.arena.time(head), self.arena.seq(head), self.arena.user(head));
        let mut prev = head;
        let mut i = self.arena.next(head);
        while i != NIL {
            let key = (self.arena.time(i), self.arena.seq(i), self.arena.user(i));
            if key < best_key {
                best = i;
                best_prev = prev;
                best_key = key;
            }
            prev = i;
            i = self.arena.next(i);
        }
        (best, best_prev)
    }

    /// The earliest pending `(time, seq)` key. Advances the cursor past
    /// empty buckets (observationally pure memoization, hence `&mut`).
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.peek_full().map(|(t, s, _)| (t, s))
    }

    /// The earliest pending time.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_full().map(|(t, _, _)| t)
    }

    fn peek_full(&mut self) -> Option<(SimTime, u64, u32)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // Wheel empty ⇒ the overflow minimum is the global minimum.
            return self.overflow.peek().map(|&Reverse(k)| k);
        }
        self.advance_cursor();
        let (best, _) = self.min_in_cursor_bucket();
        Some((self.arena.time(best), self.arena.seq(best), self.arena.user(best)))
    }

    /// Removes and returns the earliest event (full `(time, seq, user)`
    /// order — identical to the binary heap's).
    pub fn pop(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            self.refill_from_overflow();
        }
        let (time, user) = if self.wheel_len == 0 {
            // Nothing refilled: the remaining events sit at the saturation
            // horizon (e.g. `SimTime::MAX` sentinels). The overflow heap
            // is ordered by the full key, so popping it directly is exact.
            let Reverse((t, _, u)) = self.overflow.pop()?;
            (t, u)
        } else {
            self.advance_cursor();
            let (best, best_prev) = self.min_in_cursor_bucket();
            let nxt = self.arena.next(best);
            if best_prev == NIL {
                self.buckets[self.cursor] = nxt;
            } else {
                self.arena.set_next(best_prev, nxt);
            }
            let t = self.arena.time(best);
            let u = self.arena.user(best);
            self.arena.free(best);
            self.wheel_len -= 1;
            (t, u)
        };
        self.len -= 1;
        // Deterministic density estimate: EWMA of inter-pop gaps feeds the
        // next geometry change (refill or rebuild), never the live wheel.
        let gap = t_us_clamped(time).saturating_sub(self.last_pop_us);
        self.last_pop_us = t_us_clamped(time);
        // The 1/64 weight matters: inter-pop gaps are roughly exponential
        // (CV ≈ 1), and the drift trigger below only has a 2-exponent (4×)
        // hysteresis band. A fast EWMA's noise band would straddle a
        // power-of-two boundary and thrash O(n) rebuilds; at 1/64 the
        // estimate's jitter is ~0.13 in log2 — far inside the band.
        self.avg_gap_q8 =
            ((self.avg_gap_q8 * 63 + (gap.min(1 << MAX_SHIFT) << 8)) / 64).max(1 << 8);
        // Geometry re-track: shrink an oversized wheel (4× hysteresis
        // below the sizing target), and — crucially for workloads that
        // fill first and pop later — rebuild when the observed pop
        // cadence has drifted ≥ 2 width exponents (4×) from the wheel's
        // bucket width. Without the drift trigger a constant-population
        // queue (every pop matched by a reschedule) would keep its
        // fill-time geometry forever; the 2-exponent hysteresis keeps
        // EWMA jitter around a width boundary from thrashing rebuilds.
        let target = Self::target_buckets(self.len);
        if target < self.buckets.len() / 4
            || (self.len > 0 && Self::shift_for_gap(self.avg_gap_q8 >> 8).abs_diff(self.shift) >= 2)
        {
            self.rebuild(None);
        }
        Some(Event { time, user: UserId(user) })
    }

    /// Re-anchors the (empty) wheel at the overflow minimum and drains
    /// every overflow event below the new horizon into buckets. Also the
    /// moment the bucket width re-tracks the observed pop cadence — the
    /// wheel is empty, so the geometry may change freely.
    fn refill_from_overflow(&mut self) {
        debug_assert_eq!(self.wheel_len, 0, "refill with wheel events pending");
        let Some(&Reverse((tmin, _, _))) = self.overflow.peek() else {
            return;
        };
        self.shift = Self::shift_for_gap(self.avg_gap_q8 >> 8);
        self.day_start = (tmin.as_us() >> self.shift) << self.shift;
        self.cursor = 0;
        let horizon = self.horizon();
        while let Some(&Reverse((t, _, _))) = self.overflow.peek() {
            if t.as_us() >= horizon {
                break;
            }
            let Some(Reverse((t, s, u))) = self.overflow.pop() else {
                break; // unreachable: peek just succeeded
            };
            self.place_in_wheel(t, s, u);
        }
    }

    /// Collects every pending event, re-chooses the geometry (bucket count
    /// from the population, width from the pop-gap EWMA, anchor at the
    /// minimum pending time), and redistributes. O(n + buckets), amortized
    /// O(1) by the doubling/quartering triggers.
    fn rebuild(&mut self, extra: Option<(SimTime, u64, u32)>) {
        let mut all: Vec<(SimTime, u64, u32)> = Vec::with_capacity(self.len);
        for b in 0..self.buckets.len() {
            let mut i = self.buckets[b];
            while i != NIL {
                all.push((self.arena.time(i), self.arena.seq(i), self.arena.user(i)));
                i = self.arena.next(i);
            }
        }
        // `into_vec` hands back the raw heap storage in O(1) — the order
        // does not matter here, redistribution re-sorts by bucket.
        for Reverse(trip) in std::mem::take(&mut self.overflow).into_vec() {
            all.push(trip);
        }
        if let Some(trip) = extra {
            all.push(trip);
        }
        debug_assert_eq!(all.len(), self.len, "rebuild lost or duplicated events");
        self.arena.clear();
        let nbuckets = Self::target_buckets(all.len());
        self.buckets.clear();
        self.buckets.resize(nbuckets, NIL);
        self.shift = Self::shift_for_gap(self.avg_gap_q8 >> 8);
        let min_us = all.iter().map(|&(t, _, _)| t.as_us()).min().unwrap_or(0);
        self.day_start = (min_us >> self.shift) << self.shift;
        self.cursor = 0;
        self.wheel_len = 0;
        let horizon = self.horizon();
        for (t, s, u) in all {
            if t.as_us() >= horizon {
                self.overflow.push(Reverse((t, s, u)));
            } else {
                self.place_in_wheel(t, s, u);
            }
        }
    }
}

/// `as_us` clamped away from the `u64::MAX` sentinel so the gap EWMA
/// arithmetic stays far from overflow.
fn t_us_clamped(t: SimTime) -> u64 {
    t.as_us().min(1 << 62)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn arena_allocates_reuses_and_checks_generations() {
        let mut a = EventArena::new();
        let h0 = a.insert(t(10), 0, 1);
        let h1 = a.insert(t(20), 1, 2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h0).map(|r| r.user), Some(1));
        assert!(a.remove(h0));
        assert_eq!(a.get(h0), None, "freed handle no longer resolves");
        assert!(!a.remove(h0), "double free is rejected");
        // Reuse: the freed slot comes back with a new generation.
        let h2 = a.insert(t(30), 2, 3);
        assert_eq!(h2.index, h0.index, "LIFO slot reuse");
        assert_ne!(h2.generation, h0.generation);
        assert_eq!(a.get(h0), None, "stale handle misses the reused slot");
        assert_eq!(a.get(h2).map(|r| r.seq), Some(2));
        assert_eq!(a.get(h1).map(|r| r.time), Some(t(20)));
        assert_eq!(a.capacity(), 2, "no slab growth after reuse");
    }

    #[test]
    fn arena_serde_round_trips_and_rejects_corruption() {
        let mut a = EventArena::new();
        let hs: Vec<_> = (0..5).map(|i| a.insert(t(i * 100), i, 7)).collect();
        a.remove(hs[1]);
        a.remove(hs[3]);
        let v = a.to_value();
        let back = EventArena::from_value(&v).expect("round trip");
        assert_eq!(a, back);
        // Corrupt the live count: validation must reject it.
        let Value::Object(mut pairs) = v.clone() else { panic!("object") };
        for (k, val) in &mut pairs {
            if k == "live" {
                *val = Value::U64(5);
            }
        }
        let err = EventArena::from_value(&Value::Object(pairs)).unwrap_err();
        assert!(err.to_string().contains("corrupt EventArena snapshot"), "{err}");
    }

    #[test]
    fn pops_in_full_key_order() {
        let mut q = CalendarQueue::new();
        q.insert(t(300), 2, 9);
        q.insert(t(100), 0, 4);
        q.insert(t(300), 1, 5);
        q.insert(t(200), 3, 6);
        let order: Vec<(u64, u32)> =
            std::iter::from_fn(|| q.pop()).map(|e| (e.time.as_us(), e.user.0)).collect();
        assert_eq!(order, vec![(100, 4), (200, 6), (300, 5), (300, 9)]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        let mut q = CalendarQueue::new();
        q.insert(t(50), 0, 1);
        q.insert(SimTime::MAX, 1, 2); // saturation sentinel
        q.insert(t(10_000_000_000), 2, 3); // ~2.8 simulated hours out
        assert_eq!(q.peek_time(), Some(t(50)));
        assert_eq!(q.pop().map(|e| e.user.0), Some(1));
        assert_eq!(q.pop().map(|e| e.user.0), Some(3));
        assert_eq!(q.pop().map(|e| e.user.0), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn grows_and_shrinks_through_rebuilds() {
        let mut q = CalendarQueue::new();
        // Push enough to force several doublings past MIN_BUCKETS…
        for i in 0..2000u64 {
            q.insert(t(i * 37 % 5000), i, (i % 13) as u32);
        }
        assert_eq!(q.len(), 2000);
        assert!(q.buckets.len() > MIN_BUCKETS, "wheel grew");
        // …then drain fully (exercising the shrink trigger) in exact order.
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        let mut q2 = std::mem::take(&mut q); // CalendarQueue: Default for take
        while let Some(e) = q2.pop() {
            n += 1;
            assert!((e.time, 0) >= (last.0, 0), "time went backwards");
            last = (e.time, 0);
        }
        assert_eq!(n, 2000);
    }
}
