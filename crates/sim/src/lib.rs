//! The event-driven, stochastic workload simulator of §2.
//!
//! Three components make up the model, mirroring the paper exactly:
//!
//! 1. **the disk system** (`readopt-disk`) — an array of disks behind the
//!    [`readopt_disk::Storage`] trait;
//! 2. **the workload characterization** ([`filetype::FileTypeConfig`], the
//!    fourteen Table 2 parameters) — file types defining size, access and
//!    growth behaviour for a population of files driven by *users* (parallel
//!    event streams);
//! 3. **the allocation policies** (`readopt-alloc`) — behind the
//!    [`readopt_alloc::Policy`] trait.
//!
//! [`engine::Simulation`] wires the three together and exposes the paper's
//! three test procedures (§3):
//!
//! * **allocation test** — only extend/truncate/delete/create operations run
//!   until the first allocation failure, then internal and external
//!   fragmentation are computed;
//! * **application performance test** — the full operation mix runs with the
//!   disk 90–95 % full until throughput stabilizes (three consecutive
//!   10-second intervals within 0.1 %);
//! * **sequential performance test** — only whole-file reads and writes.
//!
//! Everything is deterministic given a seed:
//!
//! ```
//! use readopt_sim::{SimConfig, Simulation, FileTypeConfig};
//! use readopt_disk::ArrayConfig;
//! use readopt_alloc::PolicyConfig;
//!
//! let t = FileTypeConfig { delete_fraction: 0.0, ..FileTypeConfig::default() };
//! let config = SimConfig::new(ArrayConfig::scaled(64), PolicyConfig::paper_restricted(), vec![t]);
//! let a = Simulation::new(&config, 99).run_allocation_test();
//! let b = Simulation::new(&config, 99).run_allocation_test();
//! assert_eq!(a, b, "same seed, same result");
//! assert!(a.utilization > 0.9, "ran to the first failed allocation");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod calendar;
pub mod config;
pub mod engine;
pub mod event;
pub mod filetype;
pub mod hist;
pub mod measure;
pub mod metrics;
pub mod results;
pub mod rng;
pub mod shard;
pub mod state;

pub use calendar::{CalendarQueue, EventArena, EventHandle, EventRecord};
pub use config::SimConfig;
pub use engine::{CheckpointSpec, Simulation, CHECKPOINT_KILL_EXIT};
pub use event::{Event, EventQueue, EventQueueKind, UserId};
pub use filetype::{FileTypeConfig, OpKind};
pub use hist::{HistBucket, LatencyReservoir, TestHist};
pub use measure::{percentile_ms, percentile_of_sorted_ms, ThroughputMeter};
pub use metrics::{AllocGauges, DiskPhaseMetrics, EngineCounters, StorageMetrics, TestMetrics};
pub use results::{FragReport, PerfReport, SuiteReport};
pub use rng::SimRng;
pub use shard::ShardedEventQueue;
pub use state::{FileSlot, FileTable, FileView, UserTable};
