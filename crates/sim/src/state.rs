//! Struct-of-arrays hot-state tables for the engine.
//!
//! At million-user scale the decision loop touches one file record and one
//! user record per event. Keeping those records as an array-of-structs
//! (`Vec<SimFile>`) drags every field of a record into cache to read one
//! or two of them; this module packs the hot fields into parallel arrays
//! ([`FileTable`], [`UserTable`]) so a field sweep is a sequential scan of
//! one contiguous array — the cache-conscious layout the affs-read
//! playbook (SNIPPETS.md) prescribes for hot loops.
//!
//! Slots are addressed by `u32` index. The public API hands out
//! generation-checked [`FileSlot`] handles (odd generation = live, even =
//! free, matching the event-arena convention in [`crate::calendar`]) so a
//! stale handle held across a free can never silently alias a reused
//! slot. The engine itself indexes raw `u32`s it owns — retirement marks
//! files dead without freeing the slot, so indices held in
//! `files_by_type` stay stable for a whole run and the table's insertion
//! order (and therefore every digest) is identical to the old
//! `Vec<SimFile>`.

use readopt_alloc::FileId;
use serde::{de_field, Deserialize, Error, Serialize, Value};

/// Null index for the free stack sentinel checks.
const NIL: u32 = u32::MAX;

/// Generation-checked handle into a [`FileTable`] slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSlot {
    /// Slot index.
    pub index: u32,
    /// Generation the slot had when the handle was minted (odd = live).
    pub generation: u32,
}

/// A read-only view of one live file record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileView {
    /// The allocation policy's identifier for this file.
    pub policy_id: FileId,
    /// Index into the workload's file-type list.
    pub type_idx: u32,
    /// Bytes of real data, in disk units.
    pub logical_units: u64,
    /// Sequential-access cursor, in units.
    pub cursor: u64,
    /// False once the file has been retired.
    pub live: bool,
    /// Position in the per-type selection index.
    pub pos_in_type: u32,
}

/// Per-file hot state as parallel arrays (see the module docs).
///
/// Fields are `pub(crate)` so the engine's hot loops index exactly the
/// array they need; external callers go through the handle API.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FileTable {
    /// The allocation policy's identifier, one per slot.
    pub(crate) policy_id: Vec<FileId>,
    /// Workload file-type index, one per slot.
    pub(crate) type_idx: Vec<u32>,
    /// Real data in disk units ("used" space for internal-fragmentation
    /// accounting), one per slot.
    pub(crate) logical_units: Vec<u64>,
    /// Sequential-access cursor in units, one per slot.
    pub(crate) cursor: Vec<u64>,
    /// False once the file has been retired (its slot could not be
    /// re-created after a delete on a full disk), one per slot.
    pub(crate) live: Vec<bool>,
    /// Position in `files_by_type[type_idx]`, maintained so retirement is
    /// an O(1) swap-remove instead of an O(n) scan. One per slot.
    pub(crate) pos_in_type: Vec<u32>,
    /// Slot generations; odd = live, even = free.
    pub(crate) gen: Vec<u32>,
    /// Freed slots, reused LIFO. Serialized as-is: reuse order is ground
    /// truth for determinism, not a derived quantity.
    pub(crate) free: Vec<u32>,
}

impl FileTable {
    /// An empty table.
    pub fn new() -> Self {
        FileTable::default()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.policy_id.len() - self.free.len()
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots (live + freed).
    pub fn capacity(&self) -> usize {
        self.policy_id.len()
    }

    /// Allocates a record (zeroed cursor/logical size, live), reusing the
    /// most recently freed slot first.
    pub fn insert(&mut self, policy_id: FileId, type_idx: u32) -> FileSlot {
        if let Some(i) = self.free.pop() {
            let iu = i as usize;
            self.policy_id[iu] = policy_id;
            self.type_idx[iu] = type_idx;
            self.logical_units[iu] = 0;
            self.cursor[iu] = 0;
            self.live[iu] = true;
            self.pos_in_type[iu] = 0;
            self.gen[iu] = self.gen[iu].wrapping_add(1); // even → odd
            return FileSlot { index: i, generation: self.gen[iu] };
        }
        let i = u32::try_from(self.policy_id.len())
            // simlint::allow(r3, "4 billion live files exceeds any configured workload; slots are reused before this")
            .unwrap_or_else(|_| unreachable!("file table exceeds u32 slots"));
        self.policy_id.push(policy_id);
        self.type_idx.push(type_idx);
        self.logical_units.push(0);
        self.cursor.push(0);
        self.live.push(true);
        self.pos_in_type.push(0);
        self.gen.push(1);
        FileSlot { index: i, generation: 1 }
    }

    /// Reads a record back; `None` once the slot has been freed (stale
    /// handles never resolve, even after reuse).
    pub fn get(&self, s: FileSlot) -> Option<FileView> {
        let i = s.index as usize;
        if i < self.gen.len() && self.gen[i] == s.generation && s.generation % 2 == 1 {
            Some(FileView {
                policy_id: self.policy_id[i],
                type_idx: self.type_idx[i],
                logical_units: self.logical_units[i],
                cursor: self.cursor[i],
                live: self.live[i],
                pos_in_type: self.pos_in_type[i],
            })
        } else {
            None
        }
    }

    /// Frees the record behind `s`. Returns `false` (and does nothing)
    /// for a stale or never-valid handle.
    pub fn remove(&mut self, s: FileSlot) -> bool {
        if self.get(s).is_none() {
            return false;
        }
        let iu = s.index as usize;
        self.gen[iu] = self.gen[iu].wrapping_add(1); // odd → even
        self.live[iu] = false;
        self.free.push(s.index);
        true
    }

    /// Appends a record and returns its raw index (engine path: the
    /// engine never frees slots, so raw indices stay stable for a run).
    pub(crate) fn push(
        &mut self,
        policy_id: FileId,
        type_idx: u32,
        logical_units: u64,
        pos_in_type: u32,
    ) -> u32 {
        let slot = self.insert(policy_id, type_idx);
        let iu = slot.index as usize;
        self.logical_units[iu] = logical_units;
        self.pos_in_type[iu] = pos_in_type;
        slot.index
    }

    /// Consistency check shared by the serde load path and tests.
    fn validate(&self) -> Result<(), String> {
        let n = self.policy_id.len();
        if self.type_idx.len() != n
            || self.logical_units.len() != n
            || self.cursor.len() != n
            || self.live.len() != n
            || self.pos_in_type.len() != n
            || self.gen.len() != n
        {
            return Err("parallel arrays disagree on length".into());
        }
        let mut freed = vec![false; n];
        for &i in &self.free {
            if i == NIL || (i as usize) >= n {
                return Err(format!("free-stack index {i} out of bounds"));
            }
            let iu = i as usize;
            if freed[iu] {
                return Err(format!("slot {i} on the free stack twice"));
            }
            if self.gen[iu] % 2 == 1 {
                return Err(format!("live slot {i} on the free stack"));
            }
            if self.live[iu] {
                return Err(format!("freed slot {i} still marked live"));
            }
            freed[iu] = true;
        }
        for (idx, g) in self.gen.iter().enumerate() {
            if g % 2 == 0 && !freed[idx] {
                return Err(format!("free slot {idx} missing from the free stack"));
            }
        }
        Ok(())
    }
}

impl Serialize for FileTable {
    fn to_value(&self) -> Value {
        let ids: Vec<u32> = self.policy_id.iter().map(|f| f.0).collect();
        Value::Object(vec![
            ("policy_id".to_string(), ids.to_value()),
            ("type_idx".to_string(), self.type_idx.to_value()),
            ("logical_units".to_string(), self.logical_units.to_value()),
            ("cursor".to_string(), self.cursor.to_value()),
            ("live".to_string(), self.live.to_value()),
            ("pos_in_type".to_string(), self.pos_in_type.to_value()),
            ("gen".to_string(), self.gen.to_value()),
            ("free".to_string(), self.free.to_value()),
        ])
    }
}

impl Deserialize for FileTable {
    /// Reconstructs the table and **validates** it: length mismatches, an
    /// out-of-bounds or duplicated free stack, or generation parities
    /// that disagree with the free stack are rejected loudly instead of
    /// corrupting slot reuse later.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let ids: Vec<u32> = de_field(v, "policy_id")?;
        let table = FileTable {
            policy_id: ids.into_iter().map(FileId).collect(),
            type_idx: de_field(v, "type_idx")?,
            logical_units: de_field(v, "logical_units")?,
            cursor: de_field(v, "cursor")?,
            live: de_field(v, "live")?,
            pos_in_type: de_field(v, "pos_in_type")?,
            gen: de_field(v, "gen")?,
            free: de_field(v, "free")?,
        };
        table
            .validate()
            .map_err(|why| Error::msg(format!("corrupt FileTable snapshot: {why}")))?;
        Ok(table)
    }
}

/// Per-user hot state: today a single parallel array (each user's
/// file-type index), kept as a table so future per-user fields (open
/// handles, think-state) extend columns instead of widening a struct.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UserTable {
    /// Index into the workload's file-type list, one per user.
    pub(crate) type_idx: Vec<u32>,
}

impl UserTable {
    /// An empty table.
    pub fn new() -> Self {
        UserTable::default()
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.type_idx.len()
    }

    /// True when no users are registered.
    pub fn is_empty(&self) -> bool {
        self.type_idx.is_empty()
    }

    /// Registers a user of the given file type; users are dense and never
    /// removed, so the returned id is `len - 1`.
    pub fn push(&mut self, type_idx: u32) -> u32 {
        self.type_idx.push(type_idx);
        u32::try_from(self.type_idx.len() - 1)
            // simlint::allow(r3, "user population is bounded by SimConfig validation far below u32")
            .unwrap_or_else(|_| unreachable!("user table exceeds u32 users"))
    }

    /// Drops every user (the engine re-registers on `schedule_users`).
    pub fn clear(&mut self) {
        self.type_idx.clear();
    }

    /// File-type index of `user`.
    pub fn type_of(&self, user: u32) -> u32 {
        self.type_idx[user as usize]
    }
}

impl Serialize for UserTable {
    fn to_value(&self) -> Value {
        Value::Object(vec![("type_idx".to_string(), self.type_idx.to_value())])
    }
}

impl Deserialize for UserTable {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(UserTable { type_idx: de_field(v, "type_idx")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_reuse_lifo_with_fresh_generations() {
        let mut t = FileTable::new();
        let a = t.insert(FileId(10), 0);
        let b = t.insert(FileId(11), 1);
        assert_eq!(t.len(), 2);
        assert!(t.remove(a));
        assert!(!t.remove(a), "double free rejected");
        assert_eq!(t.get(a), None);
        let c = t.insert(FileId(12), 2);
        assert_eq!(c.index, a.index, "LIFO reuse");
        assert_ne!(c.generation, a.generation);
        assert_eq!(t.get(a), None, "stale handle misses the reused slot");
        assert_eq!(t.get(c).map(|f| f.policy_id), Some(FileId(12)));
        assert_eq!(t.get(b).map(|f| f.type_idx), Some(1));
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn serde_round_trips_and_rejects_corruption() {
        let mut t = FileTable::new();
        let slots: Vec<_> = (0..4).map(|i| t.insert(FileId(i), i % 2)).collect();
        t.logical_units[1] = 77;
        t.remove(slots[2]);
        let v = t.to_value();
        let back = FileTable::from_value(&v).expect("round trip");
        assert_eq!(t, back);
        // Corrupt the free stack (point it at a live slot).
        let Value::Object(mut pairs) = v else { panic!("object") };
        for (k, val) in &mut pairs {
            if k == "free" {
                *val = vec![0u32].to_value();
            }
        }
        let err = FileTable::from_value(&Value::Object(pairs)).unwrap_err();
        assert!(err.to_string().contains("corrupt FileTable snapshot"), "{err}");
    }

    #[test]
    fn user_table_registers_densely() {
        let mut u = UserTable::new();
        assert_eq!(u.push(3), 0);
        assert_eq!(u.push(1), 1);
        assert_eq!(u.type_of(0), 3);
        assert_eq!(u.len(), 2);
        u.clear();
        assert!(u.is_empty());
    }
}
