//! Property tests for [`ThroughputMeter`]: the pro-rata interval accounting
//! must conserve bytes for any span set, and the paper's stabilization rule
//! (§3: "3 consecutive 10 second intervals ... within .1 % of each other")
//! must trigger exactly on its definition.

use proptest::prelude::*;
use readopt_disk::{SimDuration, SimTime};
use readopt_sim::{percentile_ms, percentile_of_sorted_ms, ThroughputMeter};

const INTERVAL_MS: f64 = 10_000.0;

fn meter() -> ThroughputMeter {
    ThroughputMeter::new(SimTime::ZERO, SimDuration::from_secs(10.0))
}

/// Sum of all bucket contents, recovered through the public API with
/// `max_bytes_per_ms = 1.0` (so `pct = 100 · bytes / interval_ms`).
fn bucket_sum(m: &ThroughputMeter) -> f64 {
    let last = m.complete_intervals(m.last_span_end());
    let mut sum = 0.0;
    for i in 0..=last {
        sum += m.interval_pct(i, 1.0) * INTERVAL_MS / 100.0;
    }
    sum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Conservation: pro-rata attribution over any batch of spans loses not
    /// a single byte — the buckets sum to `total_bytes` within 1e-9
    /// (relative).
    #[test]
    fn bucket_attribution_conserves_bytes(
        spans in proptest::collection::vec(
            (0u64..200_000, 0u64..120_000, 1u64..1_000_000),
            1..40,
        ),
    ) {
        let mut m = meter();
        let mut expected = 0.0f64;
        for &(start_ms, len_ms, bytes) in &spans {
            m.add_span(
                SimTime::from_ms(start_ms as f64),
                SimTime::from_ms((start_ms + len_ms) as f64),
                bytes,
            );
            expected += bytes as f64;
        }
        prop_assert!((m.total_bytes() - expected).abs() <= 1e-9 * expected.max(1.0));
        let sum = bucket_sum(&m);
        prop_assert!(
            (sum - expected).abs() <= 1e-9 * expected.max(1.0),
            "buckets sum to {sum}, expected {expected}"
        );
    }

    /// A single span smeared across many intervals still conserves bytes,
    /// and every interior interval gets the same per-interval share.
    #[test]
    fn long_spans_never_lose_bytes(
        n_intervals in 2u64..60,
        offset_ms in 0u64..10_000,
        bytes in 1u64..1_000_000_000,
    ) {
        let mut m = meter();
        let start = offset_ms as f64;
        let end = start + n_intervals as f64 * INTERVAL_MS;
        m.add_span(SimTime::from_ms(start), SimTime::from_ms(end), bytes);
        let sum = bucket_sum(&m);
        prop_assert!(
            (sum - bytes as f64).abs() <= 1e-9 * bytes as f64,
            "{n_intervals}-interval span: buckets sum to {sum}, expected {bytes}"
        );
        // Interior intervals (fully covered by the span) all get the same
        // pro-rata share: bytes / span_length_in_intervals.
        let share = bytes as f64 / n_intervals as f64;
        let first_full = if offset_ms == 0 { 0 } else { 1 };
        for i in first_full..(n_intervals as usize).saturating_sub(1) {
            let got = m.interval_pct(i, 1.0) * INTERVAL_MS / 100.0;
            prop_assert!(
                (got - share).abs() <= 1e-6 * share,
                "interval {i}: {got} vs share {share}"
            );
        }
    }

    /// The stopping rule fires exactly when the last 3 complete intervals
    /// agree within .1 percentage points. Byte counts are exact integers
    /// (no float rounding on input): with `max_bytes_per_ms = 1.0` an
    /// interval holding B bytes reads as B/100 percent, so a byte delta of
    /// exactly 10 sits on the 0.1-pct boundary — excluded via prop_assume
    /// to stay clear of the rule's 1e-9 float epsilon.
    #[test]
    fn stabilization_triggers_iff_three_intervals_agree(
        base_bytes in 500u64..9_000,
        d1 in 0u64..50,
        d2 in 0u64..50,
    ) {
        let bytes = [base_bytes, base_bytes + d1, base_bytes + d2];
        let spread = d1.max(d2);
        prop_assume!(spread != 10);
        let mut m = meter();
        for (i, b) in bytes.iter().enumerate() {
            let t0 = i as f64 * INTERVAL_MS;
            m.add_span(SimTime::from_ms(t0), SimTime::from_ms(t0 + INTERVAL_MS), *b);
        }
        let now = SimTime::from_ms(3.0 * INTERVAL_MS);
        let got = m.stabilized(now, 1.0, 3, 0.1);
        if spread < 10 {
            let mean = got.expect("spread within tolerance must stabilize");
            let want = (bytes[0] + bytes[1] + bytes[2]) as f64 / 3.0 / 100.0;
            prop_assert!((mean - want).abs() < 1e-9, "mean {mean} vs {want}");
        } else {
            prop_assert!(got.is_none(), "byte spread {spread} must not stabilize");
        }
        // Two complete intervals are never enough, whatever the spread.
        prop_assert!(m.stabilized(SimTime::from_ms(2.0 * INTERVAL_MS), 1.0, 3, 0.1).is_none());
    }
}

/// Textbook nearest-rank percentile, spelled out the slow way: sort, count
/// up to the first rank covering at least `q·n` of the samples.
fn naive_nearest_rank(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let q = q.clamp(0.0, 1.0);
    for (i, &x) in sorted.iter().enumerate() {
        if (i + 1) as f64 >= q * n as f64 {
            return x;
        }
    }
    sorted[n - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The shared nearest-rank implementation matches the textbook
    /// definition for any sample set and any quantile, and the
    /// sorted-input fast path agrees with the sorting entry point.
    #[test]
    fn percentile_matches_naive_nearest_rank(
        samples in proptest::collection::vec(0u64..1_000_000, 0..200),
        q_millis in 0u64..=1000,
    ) {
        let xs: Vec<f64> = samples.iter().map(|&v| v as f64 / 1000.0).collect();
        let q = q_millis as f64 / 1000.0;
        let want = naive_nearest_rank(&xs, q);
        prop_assert_eq!(percentile_ms(&xs, q), want);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(percentile_of_sorted_ms(&sorted, q), want);
    }

    /// Percentiles are monotone in `q` and always members of the sample
    /// set (nearest-rank never interpolates).
    #[test]
    fn percentile_is_monotone_and_selects_a_sample(
        samples in proptest::collection::vec(0u64..1_000_000, 1..100),
        qa in 0u64..=1000,
        qb in 0u64..=1000,
    ) {
        let xs: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        let pa = percentile_ms(&xs, lo as f64 / 1000.0);
        let pb = percentile_ms(&xs, hi as f64 / 1000.0);
        prop_assert!(pa <= pb, "p({lo}) = {pa} > p({hi}) = {pb}");
        prop_assert!(xs.contains(&pa));
        prop_assert!(xs.contains(&pb));
    }
}
