//! Differential property tests: the calendar-queue backend must pop in an
//! order *identical* to the binary-heap backend under arbitrary operation
//! sequences.
//!
//! The same pseudo-random schedule/pop stream is replayed against both
//! backends of [`EventQueue`]; after every single operation the lengths,
//! peeked keys, and popped events must match exactly. This is the
//! invariant that lets the O(1) calendar structure replace the heap
//! without perturbing a byte of the paper's simulation results: both pop
//! strictly by `(time, seq, user)`.
//!
//! The shaped time draws deliberately hit the calendar's interesting
//! regimes: dense ties sharing one bucket, zero-delay reschedules at the
//! current minimum, wide gaps that trigger bucket-width adaptation and
//! grow/shrink rebuilds, and far-future times that route through the
//! overflow heap and back out through a refill.

use proptest::prelude::*;
use readopt_disk::SimTime;
use readopt_sim::{EventQueue, EventQueueKind, UserId};

/// One step of the op stream; fields are raw entropy shaped inside the
/// driver (selector, time entropy, user entropy).
type RawOp = (u8, u32, u16);

/// Replays `ops` against both backends, asserting identical observable
/// behaviour after every step, then drains both to empty.
fn run_differential(ops: &[RawOp]) {
    let mut heap = EventQueue::with_kind(EventQueueKind::Heap);
    let mut cal = EventQueue::with_kind(EventQueueKind::Calendar);
    // The engine's clock is monotone, so times are shaped relative to the
    // most recent pop — but a below-minimum schedule is still legal and
    // occasionally produced (selector 3 with an empty queue after pops).
    let mut last: u64 = 0;
    for &(sel, t_raw, user_raw) in ops {
        let user = UserId(u32::from(user_raw));
        match sel % 8 {
            0 => {
                // Dense ties: a handful of quantized millisecond slots, so
                // many events share one time (and one calendar bucket).
                let t = SimTime::from_us(last + u64::from(t_raw % 4) * 1000);
                heap.schedule(t, user);
                cal.schedule(t, user);
            }
            1 => {
                // Wide spread: microsecond-granular gaps up to ~4 s, the
                // bread-and-butter regime the width adaptation tracks.
                let t = SimTime::from_us(last + u64::from(t_raw));
                heap.schedule(t, user);
                cal.schedule(t, user);
            }
            2 => {
                // Far future: beyond any plausible wheel horizon, forcing
                // the overflow heap and a later refill (or a direct
                // overflow pop when the wheel cannot cover the span).
                let t = SimTime::from_us(last + (u64::from(t_raw) << 24));
                heap.schedule(t, user);
                cal.schedule(t, user);
            }
            3 => {
                // Zero-delay reschedule: exactly the current minimum (the
                // engine's "act again immediately" pattern).
                let t = heap.peek_time().unwrap_or(SimTime::from_us(last));
                heap.schedule(t, user);
                cal.schedule(t, user);
            }
            4..=6 => {
                assert_eq!(heap.peek_key(), cal.peek_key(), "peek_key diverged before pop");
                let eh = heap.pop();
                let ec = cal.pop();
                assert_eq!(eh, ec, "pop diverged");
                if let Some(e) = eh {
                    last = e.time.as_us();
                }
            }
            _ => {
                assert_eq!(heap.peek_time(), cal.peek_time(), "peek_time diverged");
                assert_eq!(heap.peek_key(), cal.peek_key(), "peek_key diverged");
            }
        }
        assert_eq!(heap.len(), cal.len(), "lengths diverged");
    }
    while let Some(e) = heap.pop() {
        assert_eq!(Some(e), cal.pop(), "drain diverged");
    }
    assert!(cal.pop().is_none(), "calendar still had events after the heap drained");
    assert!(cal.is_empty() && heap.is_empty());
}

fn raw_ops() -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u16>()), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary interleavings of shaped schedules, pops, and peeks.
    #[test]
    fn calendar_matches_heap_under_arbitrary_interleavings(ops in raw_ops()) {
        run_differential(&ops);
    }

    /// Burst-then-drain: schedule-heavy prefixes push the wheel through
    /// its grow boundary, the drain suffix pushes it back through shrink.
    #[test]
    fn calendar_matches_heap_across_resize_boundaries(
        ops in proptest::collection::vec((0u8..4, any::<u32>(), any::<u16>()), 64..512),
        drains in 32usize..256,
    ) {
        // All-schedule prefix (selectors 0-3), then an all-pop suffix.
        let mut ops = ops;
        ops.extend(std::iter::repeat_n((4u8, 0u32, 0u16), drains));
        run_differential(&ops);
    }

    /// Tie storms: every event lands in one of two time slots, so the
    /// bucket-local scan carries the entire ordering burden.
    #[test]
    fn calendar_matches_heap_under_tie_storms(
        ops in proptest::collection::vec((any::<u8>(), 0u32..2, any::<u16>()), 1..300),
    ) {
        let shaped: Vec<RawOp> =
            ops.iter().map(|&(sel, t, u)| (if sel % 2 == 0 { 0 } else { 4 }, t, u)).collect();
        run_differential(&shaped);
    }

    /// Overflow stress: most schedules are far-future, so the overflow
    /// heap and its refill path dominate.
    #[test]
    fn calendar_matches_heap_through_overflow_and_refill(
        ops in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u16>()), 1..300),
    ) {
        let shaped: Vec<RawOp> = ops
            .iter()
            .map(|&(sel, t, u)| (if sel % 3 == 0 { 2 } else { sel % 8 }, t, u))
            .collect();
        run_differential(&shaped);
    }
}

/// Deterministic large script: 20 k events across every regime at once
/// (ties, wide gaps, far future), drained in two waves with a mid-drain
/// reinsertion burst — the wheel provably grows, refills from overflow,
/// and shrinks within one run.
#[test]
fn large_mixed_script_stays_identical() {
    let mut heap = EventQueue::with_kind(EventQueueKind::Heap);
    let mut cal = EventQueue::with_kind(EventQueueKind::Calendar);
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut draw = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut schedule = |heap: &mut EventQueue, cal: &mut EventQueue, base: u64, i: u64| {
        let r = draw();
        let t = match i % 4 {
            0 => base + (r % 8) * 500,           // ties in a few slots
            1 => base + r % 4_000_000,           // up to 4 s spread
            2 => base + (r % 64) << 32,          // far future (overflow)
            _ => base,                           // zero delay
        };
        let user = UserId((r >> 32) as u32);
        heap.schedule(SimTime::from_us(t), user);
        cal.schedule(SimTime::from_us(t), user);
    };
    for i in 0..20_000u64 {
        schedule(&mut heap, &mut cal, 0, i);
    }
    let mut last = 0;
    for _ in 0..10_000 {
        assert_eq!(heap.peek_key(), cal.peek_key());
        let (eh, ec) = (heap.pop(), cal.pop());
        assert_eq!(eh, ec);
        last = eh.map_or(last, |e| e.time.as_us());
    }
    for i in 0..5_000u64 {
        schedule(&mut heap, &mut cal, last, i);
    }
    while let Some(e) = heap.pop() {
        assert_eq!(Some(e), cal.pop());
    }
    assert!(cal.pop().is_none());
}
