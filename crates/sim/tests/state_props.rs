//! Property tests for the compact SoA state stores: [`FileTable`] and
//! [`EventArena`] against a naive model under arbitrary alloc/free/reuse
//! sequences, stale-handle safety via generation checks, and the
//! snapshot→load path (round-trip equality plus loud rejection of
//! corrupted snapshots, the same contract the allocator's `FreeBitmap`
//! established).

use proptest::prelude::*;
use readopt_alloc::FileId;
use readopt_disk::SimTime;
use readopt_sim::{EventArena, EventHandle, FileSlot, FileTable};
use serde::{Deserialize, Serialize, Value};

/// One step of the op stream; fields are raw entropy shaped inside the
/// driver.
type RawOp = (u8, u16);

fn raw_ops() -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec((any::<u8>(), any::<u16>()), 1..200)
}

/// Returns `v` with the object field `key` replaced by `new` — the
/// corruption tool for snapshot-rejection tests.
fn with_field(v: &Value, key: &str, new: Value) -> Value {
    let Value::Object(fields) = v else { panic!("snapshot is not an object") };
    assert!(fields.iter().any(|(k, _)| k == key), "no field {key} to corrupt");
    Value::Object(
        fields
            .iter()
            .map(|(k, val)| (k.clone(), if k == key { new.clone() } else { val.clone() }))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// FileTable vs a naive model: every live handle reads back exactly
    /// what was written, LIFO slot reuse is observable through handle
    /// indices, and freed handles go permanently dead (stale `get` is
    /// `None`, stale `remove` is a no-op) even after the slot is reused.
    #[test]
    fn file_table_matches_model(ops in raw_ops()) {
        let mut table = FileTable::new();
        let mut live: Vec<(FileSlot, FileId, u32)> = Vec::new();
        let mut graveyard: Vec<FileSlot> = Vec::new();
        let mut free_model: Vec<u32> = Vec::new();
        let mut next_id = 0u32;
        for &(sel, arg) in &ops {
            match sel % 4 {
                0 | 3 => {
                    let id = FileId(next_id);
                    let type_idx = u32::from(arg % 7);
                    next_id += 1;
                    let slot = table.insert(id, type_idx);
                    // Most recently freed slot is reused first.
                    if let Some(expected) = free_model.pop() {
                        assert_eq!(slot.index, expected, "reuse is not LIFO");
                    } else {
                        assert_eq!(slot.index as usize, table.capacity() - 1, "fresh slots append");
                    }
                    assert_eq!(slot.generation % 2, 1, "live handles carry odd generations");
                    live.push((slot, id, type_idx));
                }
                1 if !live.is_empty() => {
                    let (slot, _, _) = live.swap_remove(arg as usize % live.len());
                    assert!(table.remove(slot), "removing a live handle succeeds");
                    assert_eq!(table.get(slot), None, "freed handle reads as dead");
                    free_model.push(slot.index);
                    graveyard.push(slot);
                }
                2 if !graveyard.is_empty() => {
                    let stale = graveyard[arg as usize % graveyard.len()];
                    assert_eq!(table.get(stale), None, "stale handle must not read");
                    let cap = table.capacity();
                    let len = table.len();
                    assert!(!table.remove(stale), "stale remove must be a no-op");
                    assert_eq!((table.capacity(), table.len()), (cap, len), "stale remove mutated");
                }
                _ => {}
            }
            assert_eq!(table.len(), live.len(), "live count diverged");
            assert_eq!(table.capacity(), live.len() + free_model.len(), "slot count diverged");
            assert_eq!(table.is_empty(), live.is_empty());
        }
        for &(slot, id, type_idx) in &live {
            let view = table.get(slot).expect("live handle reads back");
            assert_eq!((view.policy_id, view.type_idx), (id, type_idx));
        }
    }

    /// Snapshot → load rebuilds an identical FileTable (every handle,
    /// live or stale, behaves the same), and corrupted snapshots are
    /// rejected loudly rather than rebuilt into quiet slot-reuse bugs.
    #[test]
    fn file_table_snapshot_roundtrip_and_rejection(ops in raw_ops()) {
        let mut table = FileTable::new();
        let mut handles: Vec<FileSlot> = Vec::new();
        for &(sel, arg) in &ops {
            if sel % 3 != 2 || handles.is_empty() {
                handles.push(table.insert(FileId(u32::from(arg)), u32::from(arg % 5)));
            } else {
                let slot = handles[arg as usize % handles.len()];
                table.remove(slot);
            }
        }
        let json = serde_json::to_string(&table).expect("serialize");
        let back: FileTable = serde_json::from_str(&json).expect("load a clean snapshot");
        assert_eq!(table, back, "round trip is identity");
        for &h in &handles {
            assert_eq!(table.get(h), back.get(h), "handle behaviour diverged after reload");
        }

        let v = table.to_value();
        // An out-of-bounds free-stack index.
        let cap = table.capacity();
        let oob = with_field(&v, "free", vec![u32::try_from(cap).unwrap()].to_value());
        prop_assert!(FileTable::from_value(&oob).is_err(), "out-of-bounds free stack accepted");
        // Parallel arrays disagreeing on length.
        let short = with_field(&v, "live", vec![true; cap + 1].to_value());
        prop_assert!(FileTable::from_value(&short).is_err(), "ragged columns accepted");
        // A live slot pushed onto the free stack (only possible when one
        // exists).
        if let Some(live_idx) = (0..cap as u32).find(|&i| {
            table.get(FileSlot { index: i, generation: 1 }).is_some()
        }) {
            let bad = with_field(&v, "free", vec![live_idx].to_value());
            prop_assert!(FileTable::from_value(&bad).is_err(), "live slot on free stack accepted");
        }
    }

    /// EventArena vs a naive model: the same alloc/free/reuse, stale
    /// handle, and generation-parity contract as the FileTable, with the
    /// free-list threaded through the records themselves.
    #[test]
    fn event_arena_matches_model(ops in raw_ops()) {
        let mut arena = EventArena::new();
        let mut live: Vec<(EventHandle, SimTime, u64, u32)> = Vec::new();
        let mut graveyard: Vec<EventHandle> = Vec::new();
        let mut freed = 0usize;
        let mut seq = 0u64;
        for &(sel, arg) in &ops {
            match sel % 4 {
                0 | 3 => {
                    let time = SimTime::from_us(u64::from(arg) * 17);
                    let user = u32::from(arg % 11);
                    seq += 1;
                    let h = arena.insert(time, seq, user);
                    assert_eq!(h.generation % 2, 1, "live handles carry odd generations");
                    if freed > 0 {
                        freed -= 1;
                    } else {
                        assert_eq!(h.index as usize, arena.capacity() - 1, "fresh slots append");
                    }
                    live.push((h, time, seq, user));
                }
                1 if !live.is_empty() => {
                    let (h, _, _, _) = live.swap_remove(arg as usize % live.len());
                    assert!(arena.remove(h), "removing a live handle succeeds");
                    assert_eq!(arena.get(h), None, "freed handle reads as dead");
                    graveyard.push(h);
                    freed += 1;
                }
                2 if !graveyard.is_empty() => {
                    let stale = graveyard[arg as usize % graveyard.len()];
                    assert_eq!(arena.get(stale), None, "stale handle must not read");
                    let len = arena.len();
                    assert!(!arena.remove(stale), "stale remove must be a no-op");
                    assert_eq!(arena.len(), len, "stale remove mutated the arena");
                }
                _ => {}
            }
            assert_eq!(arena.len(), live.len(), "live count diverged");
            assert_eq!(arena.capacity(), live.len() + freed, "slot count diverged");
        }
        for &(h, time, s, user) in &live {
            let rec = arena.get(h).expect("live handle reads back");
            assert_eq!((rec.time, rec.seq, rec.user), (time, s, user));
        }
    }

    /// Snapshot → load rebuilds an identical EventArena, and corrupted
    /// snapshots (dangling or cyclic free-lists, ragged columns) are
    /// rejected.
    #[test]
    fn event_arena_snapshot_roundtrip_and_rejection(ops in raw_ops()) {
        let mut arena = EventArena::new();
        let mut handles: Vec<EventHandle> = Vec::new();
        for (i, &(sel, arg)) in ops.iter().enumerate() {
            if sel % 3 != 2 || handles.is_empty() {
                handles.push(arena.insert(
                    SimTime::from_us(u64::from(arg)),
                    i as u64,
                    u32::from(arg % 13),
                ));
            } else {
                let h = handles[arg as usize % handles.len()];
                arena.remove(h);
            }
        }
        let json = serde_json::to_string(&arena).expect("serialize");
        let back: EventArena = serde_json::from_str(&json).expect("load a clean snapshot");
        assert_eq!(arena, back, "round trip is identity");
        for &h in &handles {
            assert_eq!(arena.get(h), back.get(h), "handle behaviour diverged after reload");
        }

        let v = arena.to_value();
        let cap = u32::try_from(arena.capacity()).unwrap();
        // Free head pointing past the slab.
        let dangling = with_field(&v, "free_head", cap.to_value());
        prop_assert!(EventArena::from_value(&dangling).is_err(), "dangling free head accepted");
        // A self-cycle in the free-list (needs at least one freed slot;
        // `next` of a freed slot pointing at itself never terminates).
        if arena.capacity() > arena.len() {
            let gens: Vec<u32> = de_gen(&v);
            if let Some(free_idx) = gens.iter().position(|g| g % 2 == 0) {
                let mut next: Vec<u32> = de_next(&v);
                next[free_idx] = u32::try_from(free_idx).unwrap();
                let cyclic = with_field(
                    &with_field(&v, "next", next.to_value()),
                    "free_head",
                    u32::try_from(free_idx).unwrap().to_value(),
                );
                prop_assert!(
                    EventArena::from_value(&cyclic).is_err(),
                    "cyclic free-list accepted"
                );
            }
        }
        // Ragged columns.
        let ragged = with_field(&v, "users", vec![0u32; arena.capacity() + 2].to_value());
        prop_assert!(EventArena::from_value(&ragged).is_err(), "ragged columns accepted");
    }
}

fn de_gen(v: &Value) -> Vec<u32> {
    serde::de_field(v, "gen").expect("gen column")
}

fn de_next(v: &Value) -> Vec<u32> {
    serde::de_field(v, "next").expect("next column")
}
