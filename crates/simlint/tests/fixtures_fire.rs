//! Fixture gate: every rule r1–r9 must fire on the dirty mini-tree.
//!
//! `tests/fixtures/` holds a self-contained fixture workspace (one crate,
//! `crates/sim`) seeded with exactly one violation per rule. Pointing
//! `run_workspace` at that root proves each rule detects its violation at
//! the expected position — the positive counterpart to the repo-level
//! clean gate in `tests/simlint_clean.rs`, which only proves absence.

use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn every_rule_fires_exactly_once_on_the_fixture_tree() {
    let report = simlint::run_workspace(&fixtures_root()).expect("fixture walk must succeed");
    assert_eq!(report.files_scanned, 3, "fixture tree is lib.rs + config.rs + engine.rs");

    let got: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.path.as_str(), f.line))
        .collect();
    let want = [
        ("r7", "crates/sim/src/config.rs", 11),
        ("r1", "crates/sim/src/engine.rs", 7),
        ("r2", "crates/sim/src/engine.rs", 14),
        ("r3", "crates/sim/src/engine.rs", 18),
        ("r4", "crates/sim/src/engine.rs", 22),
        ("r5", "crates/sim/src/engine.rs", 26),
        ("r6", "crates/sim/src/engine.rs", 30),
        ("r8", "crates/sim/src/engine.rs", 33),
        ("r9", "crates/sim/src/engine.rs", 39),
    ];
    assert_eq!(
        got, want,
        "fixture findings drifted:\n{}",
        simlint::render_human(&report)
    );
}

#[test]
fn fixture_spans_slice_the_offending_source_text() {
    let report = simlint::run_workspace(&fixtures_root()).expect("fixture walk must succeed");
    let engine_src = std::fs::read_to_string(
        fixtures_root().join("crates/sim/src/engine.rs"),
    )
    .expect("fixture engine source");

    // Byte spans must point at the exact token the rule objected to, so
    // editors and the JSON v2 report can highlight it.
    let expect = [
        ("r1", "HashMap"),
        ("r2", "Instant"),
        ("r3", "unwrap"),
        ("r4", "unsafe"),
        ("r5", "as"),
        ("r6", "sum"),
        ("r9", "=="),
    ];
    for (rule, text) in expect {
        let f = report
            .findings
            .iter()
            .find(|f| f.rule == rule && f.path.ends_with("engine.rs"))
            .unwrap_or_else(|| panic!("fixture must produce an {rule} finding"));
        let (start, end) = (f.span.0 as usize, f.span.1 as usize);
        assert_eq!(
            &engine_src[start..end],
            text,
            "{rule} span must cover `{text}`"
        );
    }

    // The r7 span covers the dead field's name in config.rs.
    let config_src = std::fs::read_to_string(
        fixtures_root().join("crates/sim/src/config.rs"),
    )
    .expect("fixture config source");
    let r7 = report
        .findings
        .iter()
        .find(|f| f.rule == "r7")
        .expect("fixture must produce an r7 finding");
    assert_eq!(&config_src[r7.span.0 as usize..r7.span.1 as usize], "dead_knob");
    assert!(
        r7.message.contains("dead_knob"),
        "r7 message names the field: {}",
        r7.message
    );
}
