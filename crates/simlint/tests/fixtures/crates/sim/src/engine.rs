//! Deliberately dirty engine: one violation per token-level rule.
//!
//! The integration test (`tests/fixtures_fire.rs`) asserts this file's
//! exact finding set, so every line number here is load-bearing.

use crate::config::SimFixtureConfig;
use std::collections::HashMap;

pub fn keeps_live_knob_alive(c: &SimFixtureConfig) -> u64 {
    c.live_knob
}

pub fn r2_wall_clock() {
    let _ = std::time::Instant::now();
}

pub fn r3_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn r4_unsafe(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn r5_narrowing(x: u64) -> u32 {
    x as u32
}

pub fn r6_unpinned_sum(xs: &[f64]) -> f64 {
    xs.iter().copied().sum::<f64>()
}

// simlint::allow(r5, "stale: the cast this line once justified is gone")
pub fn r8_stale_allow_target(x: u32) -> u64 {
    u64::from(x)
}

pub fn r9_float_eq(x: f64) -> bool {
    x == 0.0
}
