//! Fixture config: `dead_knob` is Deserialize-visible but never read.

use serde::{Deserialize, Serialize};

/// Two knobs; the fixture engine reads only one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimFixtureConfig {
    /// Read by the fixture engine — alive.
    pub live_knob: u64,
    /// r7: no non-serde, non-test read anywhere in the fixture tree.
    pub dead_knob: u64,
}
