//! Fixture crate root: a deliberately dirty mini source tree with exactly
//! one violation per simlint rule (r1–r9), asserted line-by-line by
//! `crates/simlint/tests/fixtures_fire.rs`. The real workspace walker
//! never enters directories named `fixtures`.

pub mod config;
pub mod engine;
