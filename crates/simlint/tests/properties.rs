//! Property tests for the simlint lexer and rule engine.
//!
//! The lexer is the load-bearing part of the linter: a single mis-lexed
//! string literal would either hide a real violation or fire a false
//! positive on innocent text. These properties pin the behaviors the rule
//! engine depends on:
//!
//! * totality — arbitrary byte soup never panics the lexer, and token
//!   line numbers stay monotone and in-range;
//! * immunity — banned tokens hidden in strings, raw strings, char
//!   literals, or comments never reach the rule engine;
//! * detection — a banned identifier spliced into real code is always
//!   found, no matter what benign code surrounds it;
//! * suppression — `simlint::allow` silences exactly its own rule on
//!   exactly its own line;
//! * parsing — the item parser is total on arbitrary input, and a struct
//!   definition round-trips lex→parse with its name, derives, field
//!   names, field types, and line numbers intact (the facts the r7
//!   symbol table is built from).

use proptest::collection;
use proptest::prelude::*;
use simlint::lexer::{lex, TokKind};
use simlint::parse::parse_file;
use simlint::{lint_file, FileClass, FileInput, Finding, LintConfig};

/// Lints `src` as library code of the `sim` crate (in scope for every
/// rule) under the built-in defaults.
fn lint_sim_lib(src: &str) -> Vec<Finding> {
    let cfg = LintConfig::default_config();
    lint_file(
        &FileInput { path: "crates/sim/src/prop.rs", crate_key: "sim", class: FileClass::Lib, src },
        &cfg.rules,
    )
}

/// Source fragments that are *benign*: any banned token they mention is
/// quoted or commented, so a correct lexer produces zero findings for any
/// concatenation of them.
fn benign_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f(x: u64) -> u64 { x + 1 }\n".to_string()),
        Just("let s = \"HashMap::new() and thread_rng() are just text\";\n".to_string()),
        Just("// a comment may say unwrap() or panic! freely\n".to_string()),
        Just("/* block /* nested */ comments hide unsafe { } too */\n".to_string()),
        Just("let r = r#\"raw SystemTime \"quoted\" Instant\"#;\n".to_string()),
        Just("let c = '\"'; let esc = \"a \\\" HashSet\\\" b\";\n".to_string()),
        Just("let life: &'static str = \"x\"; let ch = 'a';\n".to_string()),
        Just("let b = b\"Instant\"; let n = 0xff_u64;\n".to_string()),
        (1u32..100).prop_map(|n| format!("struct S{n}; impl S{n} {{}}\n")),
        (1u32..100).prop_map(|n| format!("const K{n}: u64 = {n};\n")),
    ]
}

/// A banned identifier together with the rule expected to fire on it.
fn banned_case() -> impl Strategy<Value = (&'static str, &'static str)> {
    prop_oneof![
        Just(("HashMap", "r1")),
        Just(("HashSet", "r1")),
        Just(("thread_rng", "r1")),
        Just(("SystemTime", "r2")),
        Just(("Instant", "r2")),
    ]
}

fn join(parts: &[String]) -> String {
    parts.concat()
}

/// Field types the r7 symbol table must see through, including generics
/// whose `,`/`<`/`>` tokens would derail a depth-unaware parser.
fn field_ty() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("u64"),
        Just("f64"),
        Just("bool"),
        Just("Vec<u64>"),
        Just("Option<String>"),
        Just("BTreeMap<u64, Vec<u8>>"),
    ]
}

proptest! {
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = lex(&src);
        let line_count = src.lines().count() as u32 + 1;
        let mut prev = 1u32;
        for t in &toks {
            prop_assert!(!t.text.is_empty(), "empty token text");
            prop_assert!(t.line >= prev, "token lines must be monotone");
            prop_assert!(t.line <= line_count, "token line past end of file");
            prev = t.line;
        }
    }

    #[test]
    fn lexing_is_deterministic(parts in collection::vec(benign_fragment(), 0..12)) {
        let src = join(&parts);
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!(x.kind == y.kind && x.text == y.text && x.line == y.line);
        }
    }

    #[test]
    fn hidden_tokens_never_fire(parts in collection::vec(benign_fragment(), 0..16)) {
        let src = join(&parts);
        let findings = lint_sim_lib(&src);
        prop_assert!(findings.is_empty(), "false positive on benign code: {:?}", findings);
    }

    #[test]
    fn banned_ident_is_always_found(
        before in collection::vec(benign_fragment(), 0..6),
        after in collection::vec(benign_fragment(), 0..6),
        case in banned_case(),
    ) {
        let (ident, rule) = case;
        let src = format!("{}let m = {ident}::default();\n{}", join(&before), join(&after));
        let expect_line = before.iter().map(|p| p.lines().count() as u32).sum::<u32>() + 1;
        let hits: Vec<Finding> =
            lint_sim_lib(&src).into_iter().filter(|f| f.rule == rule).collect();
        prop_assert!(!hits.is_empty(), "{ident} not flagged");
        prop_assert!(
            hits.iter().any(|f| f.line == expect_line),
            "{ident} flagged on wrong line: {:?} (expected {expect_line})",
            hits
        );
    }

    #[test]
    fn marker_idents_survive_lexing_exactly(
        parts in collection::vec(benign_fragment(), 0..8),
        positions in collection::vec(any::<bool>(), 0..8),
    ) {
        // Interleave a marker identifier between fragments and count that
        // the lexer reports exactly that many Ident tokens for it.
        let mut src = String::new();
        let mut expected = 0usize;
        for (i, p) in parts.iter().enumerate() {
            src.push_str(p);
            if positions.get(i).copied().unwrap_or(false) {
                src.push_str("let zz_marker_zz = 1;\n");
                expected += 1;
            }
        }
        let got = lex(&src).iter().filter(|t| t.is_ident("zz_marker_zz")).count();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn parser_is_total_on_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..300)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let parsed = parse_file(&lex(&src));
        let line_count = src.lines().count() as u32 + 1;
        for s in &parsed.structs {
            prop_assert!(s.line >= 1 && s.line <= line_count);
        }
        for f in &parsed.fns {
            prop_assert!(f.line >= 1 && f.line <= line_count);
        }
    }

    #[test]
    fn parser_roundtrips_struct_fields(
        name_tails in collection::vec((0u8..26, 0u32..1000), 1..8),
        tys in collection::vec(field_ty(), 1..8),
        derive_serde in any::<bool>(),
        lead in collection::vec(benign_fragment(), 0..4),
    ) {
        // Render a config struct from generated parts, then parse it back
        // and demand the symbol-table-relevant facts survive exactly.
        let n = name_tails.len().min(tys.len());
        let tails: Vec<String> = name_tails
            .iter()
            .map(|&(c, v)| format!("{}{v}", (b'a' + c) as char))
            .collect();
        let mut src = join(&lead);
        let lead_lines = src.lines().count() as u32;
        src.push_str(if derive_serde {
            "#[derive(Debug, Clone, Serialize, Deserialize)]\n"
        } else {
            "#[derive(Debug, Clone)]\n"
        });
        src.push_str("pub struct PropConfig {\n");
        for i in 0..n {
            // The `f{i}_` prefix keeps names unique and keyword-free.
            src.push_str(&format!("    pub f{i}_{}: {},\n", tails[i], tys[i]));
        }
        src.push_str("}\n");

        let parsed = parse_file(&lex(&src));
        // The benign lead may define structs of its own (`struct S7;`);
        // the generated one must come back exactly once among them.
        let hits: Vec<_> =
            parsed.structs.iter().filter(|s| s.name == "PropConfig").collect();
        prop_assert_eq!(hits.len(), 1, "one PropConfig in, one PropConfig out");
        let s = hits[0];
        prop_assert_eq!(s.line, lead_lines + 2);
        prop_assert_eq!(
            s.derives.iter().any(|d| d == "Deserialize"),
            derive_serde,
            "serde visibility must match the rendered derive list"
        );
        prop_assert_eq!(s.fields.len(), n);
        for i in 0..n {
            let f = &s.fields[i];
            prop_assert_eq!(&f.name, &format!("f{i}_{}", tails[i]));
            prop_assert_eq!(f.line, lead_lines + 3 + i as u32);
            // Types are stored token-flattened ("Vec < u64 >"); compare
            // whitespace-insensitively.
            let got: String = f.ty.chars().filter(|c| !c.is_whitespace()).collect();
            let want: String = tys[i].chars().filter(|c| !c.is_whitespace()).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn suppression_gates_exactly_its_rule(
        before in collection::vec(benign_fragment(), 0..6),
        right_rule in any::<bool>(),
    ) {
        let allow = if right_rule { "r1" } else { "r5" };
        let src = format!(
            "{}let m = HashMap::default(); // simlint::allow({allow}, \"property test\")\n",
            join(&before)
        );
        let r1_hits = lint_sim_lib(&src).into_iter().filter(|f| f.rule == "r1").count();
        if right_rule {
            prop_assert_eq!(r1_hits, 0, "matching allow must silence r1");
        } else {
            prop_assert!(r1_hits > 0, "allow for a different rule must not silence r1");
        }
    }
}

#[test]
fn unterminated_constructs_extend_to_eof_without_panicking() {
    for src in ["\"never closed", "r#\"raw never closed", "/* block never closed", "'x"] {
        let toks = lex(src);
        assert!(!toks.is_empty(), "{src:?} lexed to nothing");
        assert!(toks.iter().all(|t| t.line == 1));
    }
    assert_eq!(lex("").len(), 0);
}

#[test]
fn kinds_partition_comments_from_code() {
    let toks = lex("a /* c */ 'b \"s\" // tail\n");
    let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        vec![TokKind::Ident, TokKind::BlockComment, TokKind::Lifetime, TokKind::Str, TokKind::LineComment]
    );
}
