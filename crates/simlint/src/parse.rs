//! A lightweight recursive-descent *item* parser over the lexed token
//! stream.
//!
//! The syntax-aware rules (r7 dead-config, r9 float-equality) need more
//! than a flat token stream but far less than a full expression grammar:
//! which structs exist, what they derive, what their named fields are (name,
//! type, position), and where function bodies begin and end so the use-graph
//! pass ([`crate::usage`]) can treat each body as a stream of use sites.
//!
//! The parser is deliberately shallow and total:
//!
//! * items are recognized by keyword (`struct`, `enum`, `fn`, `impl`) at
//!   any nesting depth — a linear scan with brace matching, so items inside
//!   `mod` blocks and methods inside `impl` blocks come out the same way;
//! * types are captured as flattened token text (`Vec < u64 >`), enough to
//!   answer "is this exactly `f64`?" and to key symbol-table entries;
//! * expression bodies are *not* parsed — a function body is a token-index
//!   range into the caller's stream;
//! * malformed input never panics: an unclosed delimiter simply ends the
//!   item at end-of-file, mirroring the lexer's conservative totality.

use crate::lexer::{Tok, TokKind};
use crate::rules::test_regions;

/// One named struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Flattened type text, tokens joined by single spaces (`Vec < u64 >`).
    pub ty: String,
    /// 1-based line of the field-name token.
    pub line: u32,
    /// 1-based column of the field-name token.
    pub col: u32,
    /// Byte span of the field-name token.
    pub span: (u32, u32),
}

/// One `struct` item (named-field structs carry their fields; tuple and
/// unit structs parse with an empty field list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Idents listed in `#[derive(...)]` attributes (last path segment).
    pub derives: Vec<String>,
    /// Named fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// 1-based line of the struct-name token.
    pub line: u32,
    /// True when the struct sits inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
}

/// One function or method parameter with a simple `name: Type` pattern
/// (`self` receivers and destructuring patterns are skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    /// Parameter name.
    pub name: String,
    /// Flattened type text.
    pub ty: String,
}

/// One `fn` item (free function or method — the parser does not care).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Simple `name: Type` parameters.
    pub params: Vec<ParamDef>,
    /// Half-open range of *token indices* (into the lexed stream handed to
    /// [`parse_file`]) covering the body between `{` and `}` exclusive.
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the fn-name token.
    pub line: u32,
    /// True when the fn sits inside a test region.
    pub in_test: bool,
}

/// One `impl` block header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplDef {
    /// The implemented trait's last path segment (`Deserialize` for
    /// `impl<'de> serde::Deserialize<'de> for X`), if a trait impl.
    pub trait_name: Option<String>,
    /// Last path segment of the self type.
    pub type_name: String,
    /// Half-open token-index range of the impl body.
    pub body: (usize, usize),
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All struct items, in source order.
    pub structs: Vec<StructDef>,
    /// All fn items (free fns and methods), in source order.
    pub fns: Vec<FnDef>,
    /// All impl blocks, in source order.
    pub impls: Vec<ImplDef>,
}

impl ParsedFile {
    /// Token-index ranges of manual `impl Serialize/Deserialize for …`
    /// bodies — the use-graph pass must not count reads inside them
    /// (serde-internal traffic is exactly what r7 discounts).
    pub fn serde_impl_ranges(&self) -> Vec<(usize, usize)> {
        self.impls
            .iter()
            .filter(|im| {
                matches!(im.trait_name.as_deref(), Some("Serialize") | Some("Deserialize"))
            })
            .map(|im| im.body)
            .collect()
    }
}

/// Parses the item structure of one lexed file.
pub fn parse_file(toks: &[Tok]) -> ParsedFile {
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let in_test = test_regions(toks);
    let mut p = Parser { toks, code: &code, in_test: &in_test, out: ParsedFile::default() };
    p.run();
    p.out
}

struct Parser<'a> {
    toks: &'a [Tok],
    /// Indices of non-comment tokens.
    code: &'a [usize],
    in_test: &'a [bool],
    out: ParsedFile,
}

impl Parser<'_> {
    /// The token behind code-index `ci`, if any.
    fn tok(&self, ci: usize) -> Option<&Tok> {
        self.code.get(ci).map(|&ti| &self.toks[ti])
    }

    fn is_punct(&self, ci: usize, c: char) -> bool {
        self.tok(ci).is_some_and(|t| t.is_punct(c))
    }

    fn is_ident(&self, ci: usize, text: &str) -> bool {
        self.tok(ci).is_some_and(|t| t.is_ident(text))
    }

    /// Skips an attribute `#[ … ]` starting at `ci` (at the `#`); returns
    /// the code index just past the closing `]`, plus any derive idents.
    fn skip_attr(&self, ci: usize, derives: &mut Vec<String>) -> usize {
        debug_assert!(self.is_punct(ci, '#'));
        let mut cj = ci + 1;
        if !self.is_punct(cj, '[') {
            return ci + 1;
        }
        let is_derive = self.is_ident(cj + 1, "derive");
        let mut depth = 0usize;
        while let Some(t) = self.tok(cj) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return cj + 1;
                }
            } else if is_derive && t.kind == TokKind::Ident && !t.is_ident("derive") {
                // Path segments accumulate; `serde :: Deserialize` ends up
                // pushing both, and lookups match on any — the last segment
                // is the one that matters and is always present.
                derives.push(t.text.clone());
            }
            cj += 1;
        }
        self.code.len()
    }

    /// Advances past a balanced `{ … }` group whose `{` is at `ci`;
    /// returns the index just past the matching `}` (or EOF).
    fn skip_braces(&self, ci: usize) -> usize {
        debug_assert!(self.is_punct(ci, '{'));
        let mut depth = 0usize;
        let mut cj = ci;
        while let Some(t) = self.tok(cj) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return cj + 1;
                }
            }
            cj += 1;
        }
        self.code.len()
    }

    /// Skips a generics list `< … >` whose `<` is at `ci`. `->` and `>>`
    /// are handled (`>` preceded by `-` never closes; the lexer emits `>`
    /// one character at a time so shifts are two tokens).
    fn skip_generics(&self, ci: usize) -> usize {
        debug_assert!(self.is_punct(ci, '<'));
        let mut depth = 0i32;
        let mut cj = ci;
        while let Some(t) = self.tok(cj) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !(cj > 0 && self.is_punct(cj - 1, '-')) {
                depth -= 1;
                if depth == 0 {
                    return cj + 1;
                }
            }
            cj += 1;
        }
        self.code.len()
    }

    fn run(&mut self) {
        let mut derives: Vec<String> = Vec::new();
        let mut ci = 0usize;
        while ci < self.code.len() {
            let Some(t) = self.tok(ci) else { break };
            if t.is_punct('#') && self.is_punct(ci + 1, '[') {
                ci = self.skip_attr(ci, &mut derives);
                continue;
            }
            if t.is_ident("struct") {
                ci = self.parse_struct(ci, std::mem::take(&mut derives));
                continue;
            }
            if t.is_ident("enum") || t.is_ident("union") {
                ci = self.skip_item_with_body(ci);
                derives.clear();
                continue;
            }
            if t.is_ident("fn") {
                ci = self.parse_fn(ci);
                derives.clear();
                continue;
            }
            if t.is_ident("impl") {
                ci = self.parse_impl(ci);
                derives.clear();
                continue;
            }
            // Any other token: pending derives only attach to the item
            // directly following their attribute block, so a non-attribute,
            // non-item keyword token (visibility modifiers and doc idents
            // aside) eventually clears them. Keep `pub`, `(`, `)` and
            // similar prefix tokens transparent so `#[derive(..)] pub
            // struct S` still sees its derives.
            if !(t.is_ident("pub")
                || t.is_punct('(')
                || t.is_punct(')')
                || t.is_ident("crate")
                || t.is_ident("super"))
            {
                derives.clear();
            }
            ci += 1;
        }
    }

    /// Skips `enum`/`union` items: name, generics, `{ … }` body.
    fn skip_item_with_body(&self, ci: usize) -> usize {
        let mut cj = ci + 1;
        while let Some(t) = self.tok(cj) {
            if t.is_punct('<') {
                cj = self.skip_generics(cj);
                continue;
            }
            if t.is_punct('{') {
                return self.skip_braces(cj);
            }
            if t.is_punct(';') {
                return cj + 1;
            }
            cj += 1;
        }
        self.code.len()
    }

    /// Parses `struct Name … ;` / `struct Name(..);` / `struct Name { … }`,
    /// with optional generics. `ci` is at the `struct` keyword.
    fn parse_struct(&mut self, ci: usize, derives: Vec<String>) -> usize {
        let Some(name_tok) = self.tok(ci + 1) else { return ci + 1 };
        if name_tok.kind != TokKind::Ident {
            return ci + 1;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let in_test = self.in_test[self.code[ci + 1]];
        let mut cj = ci + 2;
        if self.is_punct(cj, '<') {
            cj = self.skip_generics(cj);
        }
        // Tuple struct: skip the paren group and trailing `;`.
        if self.is_punct(cj, '(') {
            let mut depth = 0usize;
            while let Some(t) = self.tok(cj) {
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        cj += 1;
                        break;
                    }
                }
                cj += 1;
            }
            self.out.structs.push(StructDef { name, derives, fields: Vec::new(), line, in_test });
            return cj;
        }
        // Unit struct.
        if self.is_punct(cj, ';') {
            self.out.structs.push(StructDef { name, derives, fields: Vec::new(), line, in_test });
            return cj + 1;
        }
        // `where` clause before the body.
        while cj < self.code.len() && !self.is_punct(cj, '{') && !self.is_punct(cj, ';') {
            cj += 1;
        }
        if !self.is_punct(cj, '{') {
            self.out.structs.push(StructDef { name, derives, fields: Vec::new(), line, in_test });
            return cj + 1;
        }
        let end = self.skip_braces(cj);
        let fields = self.parse_fields(cj + 1, end.saturating_sub(1));
        self.out.structs.push(StructDef { name, derives, fields, line, in_test });
        end
    }

    /// Parses named fields between code indices `[start, end)` (the body of
    /// a struct, exclusive of its braces).
    fn parse_fields(&self, start: usize, end: usize, ) -> Vec<FieldDef> {
        let mut fields = Vec::new();
        let mut ci = start;
        while ci < end {
            // Field attributes.
            while ci < end && self.is_punct(ci, '#') && self.is_punct(ci + 1, '[') {
                let mut ignore = Vec::new();
                ci = self.skip_attr(ci, &mut ignore);
            }
            // Visibility.
            if ci < end && self.is_ident(ci, "pub") {
                ci += 1;
                if ci < end && self.is_punct(ci, '(') {
                    while ci < end && !self.is_punct(ci, ')') {
                        ci += 1;
                    }
                    ci += 1;
                }
            }
            let Some(name_tok) = self.tok(ci) else { break };
            if name_tok.kind != TokKind::Ident || !self.is_punct(ci + 1, ':') {
                // Not a field start — resynchronize at the next comma.
                while ci < end && !self.is_punct(ci, ',') {
                    ci += 1;
                }
                ci += 1;
                continue;
            }
            let name = name_tok.text.clone();
            let (line, col) = (name_tok.line, name_tok.col);
            let span = name_tok.span();
            ci += 2; // name ':'
            // Type: up to the comma (or end) at delimiter depth 0.
            let mut ty_parts: Vec<&str> = Vec::new();
            let mut depth = 0i32;
            while ci < end {
                let Some(t) = self.tok(ci) else { break };
                if depth == 0 && t.is_punct(',') {
                    ci += 1;
                    break;
                }
                match () {
                    _ if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') => depth += 1,
                    _ if t.is_punct(')') || t.is_punct(']') => depth -= 1,
                    _ if t.is_punct('>') && !(ci > 0 && self.is_punct(ci - 1, '-')) => depth -= 1,
                    _ => {}
                }
                ty_parts.push(&t.text);
                ci += 1;
            }
            fields.push(FieldDef { name, ty: ty_parts.join(" "), line, col, span });
        }
        fields
    }

    /// Parses `fn name … ( params ) -> T { body }`. `ci` is at `fn`.
    fn parse_fn(&mut self, ci: usize) -> usize {
        let Some(name_tok) = self.tok(ci + 1) else { return ci + 1 };
        if name_tok.kind != TokKind::Ident {
            return ci + 1;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let in_test = self.in_test[self.code[ci + 1]];
        let mut cj = ci + 2;
        if self.is_punct(cj, '<') {
            cj = self.skip_generics(cj);
        }
        if !self.is_punct(cj, '(') {
            return cj;
        }
        // Parameter list.
        let params_start = cj + 1;
        let mut depth = 0usize;
        while let Some(t) = self.tok(cj) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            cj += 1;
        }
        let params = self.parse_params(params_start, cj.min(self.code.len()));
        cj += 1; // past ')'
        // Return type / where clause: scan to `{` or `;` at depth 0
        // (`->` is two tokens; angle brackets in the return type are
        // skipped as generics when encountered).
        while cj < self.code.len() {
            if self.is_punct(cj, '<') {
                cj = self.skip_generics(cj);
                continue;
            }
            if self.is_punct(cj, '{') || self.is_punct(cj, ';') {
                break;
            }
            cj += 1;
        }
        if self.is_punct(cj, '{') {
            let end = self.skip_braces(cj);
            let body_toks = (
                self.code.get(cj + 1).copied().unwrap_or(self.toks.len()),
                self.code
                    .get(end.saturating_sub(1))
                    .copied()
                    .unwrap_or(self.toks.len()),
            );
            self.out.fns.push(FnDef { name, params, body: Some(body_toks), line, in_test });
            // Do NOT skip the body wholesale: nested items (closures with
            // inner fns, local structs) still get parsed by the main loop.
            cj + 1
        } else {
            self.out.fns.push(FnDef { name, params, body: None, line, in_test });
            cj + 1
        }
    }

    /// Parses simple `name: Type` parameters between `[start, end)`.
    fn parse_params(&self, start: usize, end: usize) -> Vec<ParamDef> {
        let mut params = Vec::new();
        let mut ci = start;
        while ci < end {
            // One parameter: tokens up to the comma at depth 0.
            let mut depth = 0i32;
            let mut entry: Vec<usize> = Vec::new();
            while ci < end {
                let Some(t) = self.tok(ci) else { break };
                if depth == 0 && t.is_punct(',') {
                    ci += 1;
                    break;
                }
                match () {
                    _ if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') => depth += 1,
                    _ if t.is_punct(')') || t.is_punct(']') => depth -= 1,
                    _ if t.is_punct('>') && !(ci > 0 && self.is_punct(ci - 1, '-')) => depth -= 1,
                    _ => {}
                }
                entry.push(ci);
                ci += 1;
            }
            // Shape: [mut] name ':' type…  (skip receivers and patterns).
            let mut k = 0usize;
            if k < entry.len() && self.is_ident(entry[k], "mut") {
                k += 1;
            }
            let Some(&name_ci) = entry.get(k) else { continue };
            let Some(name_tok) = self.tok(name_ci) else { continue };
            if name_tok.kind != TokKind::Ident
                || name_tok.text == "self"
                || !self.is_punct(name_ci + 1, ':')
            {
                continue;
            }
            let ty: Vec<&str> = entry[k + 2..]
                .iter()
                .filter_map(|&eci| self.tok(eci).map(|t| t.text.as_str()))
                .collect();
            params.push(ParamDef { name: name_tok.text.clone(), ty: ty.join(" ") });
        }
        params
    }

    /// Parses an `impl` header: `impl<G> Trait for Type { … }` or
    /// `impl<G> Type { … }`. `ci` is at `impl`.
    fn parse_impl(&mut self, ci: usize) -> usize {
        let line = self.tok(ci).map(|t| t.line).unwrap_or(0);
        let mut cj = ci + 1;
        if self.is_punct(cj, '<') {
            cj = self.skip_generics(cj);
        }
        // Header tokens up to `{` at depth 0.
        let mut header: Vec<usize> = Vec::new();
        while cj < self.code.len() {
            if self.is_punct(cj, '<') {
                cj = self.skip_generics(cj);
                continue;
            }
            if self.is_punct(cj, '{') || self.is_punct(cj, ';') {
                break;
            }
            header.push(cj);
            cj += 1;
        }
        if !self.is_punct(cj, '{') {
            return cj + 1;
        }
        let body_open = cj;
        let end = self.skip_braces(body_open);
        // Split at `for`: idents before are the trait path, after the type.
        let for_pos = header.iter().position(|&h| self.is_ident(h, "for"));
        let last_ident = |slice: &[usize]| -> Option<String> {
            slice
                .iter()
                .rev()
                .filter_map(|&h| self.tok(h))
                .find(|t| t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("where"))
                .map(|t| t.text.clone())
        };
        let (trait_name, type_name) = match for_pos {
            Some(p) => (last_ident(&header[..p]), last_ident(&header[p + 1..])),
            None => (None, last_ident(&header)),
        };
        let body_toks = (
            self.code.get(body_open + 1).copied().unwrap_or(self.toks.len()),
            self.code.get(end.saturating_sub(1)).copied().unwrap_or(self.toks.len()),
        );
        self.out.impls.push(ImplDef {
            trait_name,
            type_name: type_name.unwrap_or_default(),
            body: body_toks,
            line,
        });
        // Continue *inside* the impl body so methods get parsed.
        body_open + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src))
    }

    #[test]
    fn named_struct_with_derives_and_fields() {
        let src = "#[derive(Debug, Clone, Serialize, Deserialize)]\n\
                   pub struct SimConfig {\n\
                       /// doc\n\
                       pub util_lower: f64,\n\
                       pub file_types: Vec<FileTypeConfig>,\n\
                       shards: usize,\n\
                   }";
        let p = parse(src);
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "SimConfig");
        assert!(s.derives.iter().any(|d| d == "Deserialize"));
        assert!(s.derives.iter().any(|d| d == "Clone"));
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["util_lower", "file_types", "shards"]);
        assert_eq!(s.fields[0].ty, "f64");
        assert_eq!(s.fields[1].ty, "Vec < FileTypeConfig >");
        assert_eq!(s.fields[0].line, 4);
    }

    #[test]
    fn qualified_derive_paths_keep_last_segment() {
        let src = "#[derive(serde::Deserialize)]\nstruct C { a: u64 }";
        let p = parse(src);
        assert!(p.structs[0].derives.iter().any(|d| d == "Deserialize"));
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let p = parse("struct A(u64, f64);\nstruct B;\nstruct C<T>(T);");
        assert_eq!(p.structs.len(), 3);
        assert!(p.structs.iter().all(|s| s.fields.is_empty()));
        assert_eq!(p.structs[2].name, "C");
    }

    #[test]
    fn field_attrs_and_nested_generics_parse() {
        let src = "struct S { #[serde(default)] m: BTreeMap<String, Vec<(u64, f64)>>, n: u32 }";
        let p = parse(src);
        let names: Vec<&str> = p.structs[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["m", "n"]);
    }

    #[test]
    fn fns_capture_params_and_bodies() {
        let src = "fn free(a: u64, mut b: f64) -> f64 { b + a as f64 }\n\
                   impl Foo { fn method(&self, x: f32) {} }\n\
                   trait T { fn decl(q: f64); }";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free", "method", "decl"]);
        assert_eq!(p.fns[0].params, vec![
            ParamDef { name: "a".into(), ty: "u64".into() },
            ParamDef { name: "b".into(), ty: "f64".into() },
        ]);
        assert_eq!(p.fns[1].params, vec![ParamDef { name: "x".into(), ty: "f32".into() }]);
        assert!(p.fns[0].body.is_some());
        assert!(p.fns[2].body.is_none(), "trait declaration has no body");
    }

    #[test]
    fn impl_headers_split_trait_and_type() {
        let src = "impl Config { fn f(&self) {} }\n\
                   impl Default for Config { fn default() -> Self { Config } }\n\
                   impl<'de> serde::Deserialize<'de> for Config { fn deserialize() {} }";
        let p = parse(src);
        assert_eq!(p.impls.len(), 3);
        assert_eq!(p.impls[0].trait_name, None);
        assert_eq!(p.impls[0].type_name, "Config");
        assert_eq!(p.impls[1].trait_name.as_deref(), Some("Default"));
        assert_eq!(p.impls[2].trait_name.as_deref(), Some("Deserialize"));
        assert_eq!(p.serde_impl_ranges().len(), 1);
    }

    #[test]
    fn generic_fn_with_arrow_in_bounds() {
        let src = "fn apply<F: Fn(u64) -> f64>(f: F, x: u64) -> f64 { f(x) }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].params, vec![
            ParamDef { name: "f".into(), ty: "F".into() },
            ParamDef { name: "x".into(), ty: "u64".into() },
        ]);
    }

    #[test]
    fn structs_in_cfg_test_are_marked() {
        let src = "#[cfg(test)]\nmod tests { struct Helper { x: u64 } }\nstruct Real { y: u64 }";
        let p = parse(src);
        assert_eq!(p.structs.len(), 2);
        assert!(p.structs[0].in_test);
        assert!(!p.structs[1].in_test);
    }

    #[test]
    fn parser_is_total_on_malformed_input() {
        for src in [
            "struct",
            "struct {",
            "struct S { a: ",
            "fn",
            "fn f(",
            "impl",
            "impl X {",
            "struct S { a: Vec<u64, b: f64 }",
        ] {
            let _ = parse(src); // must not panic
        }
    }

    #[test]
    fn field_positions_match_source() {
        let src = "struct S {\n    alpha: u64,\n    beta: f64,\n}";
        let p = parse(src);
        let beta = &p.structs[0].fields[1];
        assert_eq!((beta.line, beta.col), (3, 5));
        let (s, e) = beta.span;
        assert_eq!(&src[s as usize..e as usize], "beta");
    }
}
