//! `simlint` — the workspace's determinism & robustness lint pass.
//!
//! The whole value of this reproduction rests on bit-identical simulation
//! results (the parallel runner byte-compares `--jobs 1` against
//! `--jobs N`), so the classic nondeterminism hazards are enforced by
//! tooling rather than convention. This is a self-contained static
//! analysis — a hand-rolled Rust [`lexer`] plus a token-level rule engine
//! ([`rules`]) — with no dependencies, no network, and no clippy/dylint
//! machinery, so it runs identically everywhere the toolchain does.
//!
//! The analysis is layered: the [`lexer`] produces a position-carrying
//! token stream, the [`parse`] module extracts the item structure
//! (structs, fields, derives, fn bodies, impl headers), [`symbols`]
//! assembles a workspace-wide table of config-struct fields and
//! float-typed field names, and [`usage`] collects field-read sites —
//! which lets the rule set reach across files without a full type system.
//!
//! The deny-by-default rules:
//!
//! * **r1** — no `HashMap`/`HashSet`/`thread_rng`/`rand::random` in the
//!   simulation crates (`sim`, `disk`, `alloc`, `workloads`, `fs`):
//!   deterministic containers (`BTreeMap`/`BTreeSet`) and the seeded
//!   `SimRng` only. Applies to test code too — a test iterating a
//!   `HashMap` can flake.
//! * **r2** — no `std::time::{SystemTime, Instant}` or other wall-clock
//!   reads inside simulation logic; simulated time is explicit
//!   (`crates/disk/src/time.rs`). The `crates/core` runner/profiling
//!   layer is exempt.
//! * **r3** — no `.unwrap()`/`.expect()`/`panic!`/`todo!`/`unimplemented!`
//!   in library-crate non-test code; propagate through each crate's error
//!   type. `assert!` and `unreachable!` remain available for genuine
//!   invariants.
//! * **r4** — no `unsafe` outside `crates/vendor`.
//! * **r5** — no narrowing `as` casts (`u64 as u32`, `f64 as f32`, …) on
//!   the unit/time-arithmetic crates (`disk`, `alloc`, `sim`); use
//!   `try_from` or keep the wide type.
//! * **r6** — no `.sum::<f64>()` in simulation crates; float addition is
//!   not associative, so accumulation order must be pinned explicitly.
//! * **r7** — no dead config knobs: a `Deserialize`-visible field of a
//!   `*Config` struct in the simulation crates with zero non-serde,
//!   non-test reads anywhere in the workspace silently diverges from the
//!   paper's parameter space.
//! * **r8** — no stale suppressions: a `simlint::allow` directive whose
//!   removal produces no finding is deleted, and every survivor carries a
//!   justification string (`require_reason`).
//! * **r9** — no exact float `==`/`!=` in simulation crates; equal sums
//!   can differ in the last ulp depending on accumulation order.
//!
//! Every rule except r8 supports a justified inline suppression —
//! `// simlint::allow(rule, "reason")` — where the reason is mandatory,
//! and per-crate scoping via a root `simlint.toml` (see [`config`]).
//!
//! Run it with `cargo run -p simlint`; the tier-1 suite runs the same
//! pass in-process (`tests/simlint_clean.rs`) and fails on any finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod diag;
pub mod driver;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod symbols;
pub mod usage;

pub use config::{FileClass, LintConfig, RuleCfg};
pub use diag::{render_human, render_json};
pub use driver::{run_workspace, run_workspace_filtered, run_workspace_with, Report};
pub use rules::{
    analyze_file, dead_config_hits, finalize, lint_file, FileAnalysis, FileInput, Finding, RawHit,
    SuppressionInfo,
};
