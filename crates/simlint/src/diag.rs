//! Diagnostic rendering: human `file:line:col: rule: message` lines and a
//! hand-rolled JSON snapshot (the crate is dependency-free by design, so
//! no serde here).
//!
//! The JSON output is **schema v2** (`"schema": "simlint/2"`,
//! `"version": 2`): every finding carries its 1-based `col` and half-open
//! byte `span` alongside the v1 `rule`/`path`/`line`/`message` keys, so
//! findings are clickable in editors and machine-diffable byte-for-byte.

use crate::driver::Report;
use std::fmt::Write as _;

/// Renders the human-readable diagnostic listing (one line per finding,
/// plus a summary).
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    let _ = write!(
        out,
        "simlint: {} finding{} in {} file{}",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.files_scanned,
        if report.files_scanned == 1 { "" } else { "s" },
    );
    out.push('\n');
    out
}

/// Renders the machine-readable JSON snapshot (schema v2).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    let _ = write!(out, "  \"schema\": \"simlint/2\",\n");
    let _ = write!(out, "  \"version\": 2,\n");
    let _ = write!(out, "  \"files_scanned\": {},\n", report.files_scanned);
    let _ = write!(out, "  \"findings_total\": {},\n", report.findings.len());
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
             \"span\": [{}, {}], \"message\": {}}}",
            json_string(&f.rule),
            json_string(&f.path),
            f.line,
            f.col,
            f.span.0,
            f.span.1,
            json_string(&f.message)
        );
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn report() -> Report {
        Report {
            findings: vec![Finding {
                path: "crates/sim/src/x.rs".into(),
                line: 3,
                col: 9,
                rule: "r1".into(),
                message: "say \"no\" to HashMap".into(),
                span: (41, 48),
            }],
            files_scanned: 7,
        }
    }

    #[test]
    fn human_format_is_file_line_col_rule_message() {
        let text = render_human(&report());
        assert!(text.starts_with("crates/sim/src/x.rs:3:9: r1: "), "{text}");
        assert!(text.contains("simlint: 1 finding in 7 files"));
    }

    #[test]
    fn json_is_v2_with_col_and_span() {
        let json = render_json(&report());
        assert!(json.contains("\"schema\": \"simlint/2\""));
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"findings_total\": 1"));
        assert!(json.contains("\"col\": 9"));
        assert!(json.contains("\"span\": [41, 48]"));
        assert!(json.contains("say \\\"no\\\" to HashMap"));
        let clean = render_json(&Report { findings: vec![], files_scanned: 2 });
        assert!(clean.contains("\"findings\": []"));
    }

    #[test]
    fn json_control_chars_are_escaped() {
        assert_eq!(json_string("a\nb\u{1}"), "\"a\\nb\\u0001\"");
    }
}
