//! The workspace-wide symbol table.
//!
//! Built from every parsed file in one pass, it answers the two questions
//! the syntax-aware rules need globally:
//!
//! * **r7 dead-config** — which serde-visible configuration fields exist?
//!   A *config field* is a named field of a library-code, non-test struct
//!   whose name ends in `Config`; it is *Deserialize-visible* when the
//!   struct's `#[derive(...)]` list names `Deserialize` (the workspace's
//!   vendored `serde_derive` has no `#[serde(...)]` field attributes, so
//!   derive presence is the whole visibility story).
//! * **r9 float-equality** — which field names are `f64`/`f32` typed
//!   anywhere in the workspace? Keyed by bare field name: a collision
//!   between a float field and a non-float field of the same name errs
//!   toward flagging, which is the conservative direction for a
//!   determinism lint.
//!
//! Fields are keyed `crate::Type::field` for reporting but matched by bare
//! name in the use-graph ([`crate::usage`]): a read of `shards` anywhere
//! keeps *every* config field named `shards` alive. That deliberate
//! imprecision can only suppress findings, never invent them.

use crate::config::FileClass;
use crate::parse::ParsedFile;
use std::collections::BTreeSet;

/// One named field of a `*Config` struct, with everything r7 needs to
/// report it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigField {
    /// Owning crate's directory name (`sim`, `alloc`, …).
    pub crate_key: String,
    /// Owning struct (`SimConfig`).
    pub type_name: String,
    /// Field name.
    pub field: String,
    /// Workspace-relative path of the declaring file.
    pub path: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
    /// Byte span of the field name.
    pub span: (u32, u32),
    /// True when the struct derives `Deserialize`.
    pub deserialize: bool,
}

impl ConfigField {
    /// The `crate::Type::field` reporting key.
    pub fn key(&self) -> String {
        format!("{}::{}::{}", self.crate_key, self.type_name, self.field)
    }
}

/// Everything the workspace's parsed files declare that the rules care
/// about.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// All config-struct fields, in (path, line) order.
    pub config_fields: Vec<ConfigField>,
    /// Bare names of struct fields typed exactly `f64` or `f32`, anywhere.
    pub float_fields: BTreeSet<String>,
}

/// One file's contribution to the symbol table.
#[derive(Debug, Clone, Copy)]
pub struct FileSyms<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Crate directory name.
    pub crate_key: &'a str,
    /// Target class.
    pub class: FileClass,
    /// The parsed items.
    pub parsed: &'a ParsedFile,
}

/// Builds the symbol table from every file in the workspace (order of
/// `files` does not matter; output order is pinned by path+line).
pub fn build_symbols(files: &[FileSyms<'_>]) -> SymbolTable {
    let mut table = SymbolTable::default();
    for f in files {
        for s in &f.parsed.structs {
            for fld in &s.fields {
                if fld.ty == "f64" || fld.ty == "f32" {
                    table.float_fields.insert(fld.name.clone());
                }
            }
            // Config-struct fields: library code only, outside test
            // regions, name ends with `Config` (and isn't just "Config"
            // itself — that still counts; the suffix is the convention).
            if f.class != FileClass::Lib || s.in_test || !s.name.ends_with("Config") {
                continue;
            }
            let deserialize = s.derives.iter().any(|d| d == "Deserialize");
            for fld in &s.fields {
                table.config_fields.push(ConfigField {
                    crate_key: f.crate_key.to_string(),
                    type_name: s.name.clone(),
                    field: fld.name.clone(),
                    path: f.path.to_string(),
                    line: fld.line,
                    col: fld.col,
                    span: fld.span,
                    deserialize,
                });
            }
        }
    }
    table
        .config_fields
        .sort_by(|a, b| (&a.path, a.line, &a.field).cmp(&(&b.path, b.line, &b.field)));
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn syms(src: &str, class: FileClass) -> SymbolTable {
        let parsed = parse_file(&lex(src));
        build_symbols(&[FileSyms {
            path: "crates/sim/src/config.rs",
            crate_key: "sim",
            class,
            parsed: &parsed,
        }])
    }

    #[test]
    fn config_fields_require_suffix_lib_class_and_non_test() {
        let src = "#[derive(Serialize, Deserialize)]\n\
                   pub struct SimConfig { pub shards: usize, pub util: f64 }\n\
                   pub struct Engine { ticks: u64 }\n\
                   #[cfg(test)]\nmod t { struct FakeConfig { x: u64 } }";
        let t = syms(src, FileClass::Lib);
        let keys: Vec<String> = t.config_fields.iter().map(|c| c.key()).collect();
        assert_eq!(keys, vec!["sim::SimConfig::shards", "sim::SimConfig::util"]);
        assert!(t.config_fields.iter().all(|c| c.deserialize));
        // Same source in a test-file class contributes nothing.
        assert!(syms(src, FileClass::TestFile).config_fields.is_empty());
    }

    #[test]
    fn deserialize_flag_tracks_the_derive_list() {
        let t = syms("#[derive(Debug, Clone)]\nstruct FsConfig { depth: u32 }", FileClass::Lib);
        assert_eq!(t.config_fields.len(), 1);
        assert!(!t.config_fields[0].deserialize, "no Deserialize derive");
    }

    #[test]
    fn float_fields_collect_across_all_structs() {
        let t = syms(
            "struct A { rate: f64, count: u64 }\nstruct BConfig { frac: f32 }",
            FileClass::Lib,
        );
        assert!(t.float_fields.contains("rate"));
        assert!(t.float_fields.contains("frac"));
        assert!(!t.float_fields.contains("count"));
    }

    #[test]
    fn positions_point_at_the_field_name() {
        let src = "#[derive(Deserialize)]\nstruct XConfig {\n    alpha: f64,\n}";
        let t = syms(src, FileClass::Lib);
        let c = &t.config_fields[0];
        assert_eq!((c.line, c.col), (3, 5));
        assert_eq!(&src[c.span.0 as usize..c.span.1 as usize], "alpha");
    }
}
