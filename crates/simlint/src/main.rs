//! The `simlint` gate binary.
//!
//! ```text
//! simlint [--root DIR] [--json FILE] [--crates LIST] [--quiet]
//! ```
//!
//! Exit status: 0 when clean, 1 on findings, 2 on usage or I/O errors.
//! With no `--root`, walks upward from the current directory to the first
//! directory holding both a `Cargo.toml` and a `crates/` tree (so it works
//! from any workspace subdirectory).
//!
//! `--crates sim,disk` restricts which crates are *linted* (the check.sh
//! self-lint leg uses `--crates simlint`); symbol-table and use-graph
//! collection still spans the whole workspace, so r7's cross-crate read
//! analysis stays accurate under a filter.

#![forbid(unsafe_code)]

use simlint::{render_human, render_json, run_workspace_filtered, LintConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    crates: Option<BTreeSet<String>>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: None, json: None, crates: None, quiet: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--root needs a directory".to_string())?,
                ));
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--json needs a file path".to_string())?,
                ));
            }
            "--crates" => {
                let list = it.next().ok_or_else(|| "--crates needs a comma-separated list".to_string())?;
                let set: BTreeSet<String> =
                    list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
                if set.is_empty() {
                    return Err("--crates needs at least one crate name".to_string());
                }
                args.crates = Some(set);
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: simlint [--root DIR] [--json FILE] [--crates LIST] [--quiet]".to_string()
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: `--root`, or the nearest ancestor of the
/// current directory with both `Cargo.toml` and `crates/`.
fn find_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        if root.is_dir() {
            return Ok(root);
        }
        return Err(format!("--root {}: not a directory", root.display()));
    }
    let cwd = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace root (Cargo.toml + crates/) above {}",
                    cwd.display()
                ))
            }
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = find_root(args.root)?;
    let mut config = LintConfig::default_config();
    let toml_path = root.join("simlint.toml");
    if toml_path.is_file() {
        let text = std::fs::read_to_string(&toml_path)
            .map_err(|e| format!("read {}: {e}", toml_path.display()))?;
        config.apply_toml(&text)?;
    }
    let report = run_workspace_filtered(&root, &config, args.crates.as_ref())?;
    if let Some(json_path) = &args.json {
        if let Some(parent) = json_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(json_path, render_json(&report))
            .map_err(|e| format!("write {}: {e}", json_path.display()))?;
    }
    if !args.quiet || !report.is_clean() {
        print!("{}", render_human(&report));
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("simlint: {msg}");
            ExitCode::from(2)
        }
    }
}
