//! Rule configuration and the `simlint.toml` loader.
//!
//! The defaults encode the workspace invariants (see the README's
//! "Determinism invariants" section); a `simlint.toml` at the workspace
//! root can re-scope rules per crate without recompiling. Only the tiny
//! TOML subset the config needs is parsed: `[rules.<id>]` sections with
//! boolean and string-array values.

use std::collections::BTreeSet;

/// What kind of target a source file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/**` of a crate — the code other crates link against.
    Lib,
    /// `src/bin/**` or `src/main.rs` — application entry points.
    Bin,
    /// `tests/**` — integration tests.
    TestFile,
    /// `benches/**` — benchmark harnesses.
    Bench,
    /// `examples/**` — documentation-grade demos.
    Example,
}

/// Per-rule scope and behavior.
#[derive(Debug, Clone)]
pub struct RuleCfg {
    /// Crate directory names the rule applies to; `None` = every
    /// non-vendored crate.
    pub crates: Option<BTreeSet<String>>,
    /// Skip `#[cfg(test)]` / `#[test]` regions.
    pub skip_test_code: bool,
    /// Apply only to [`FileClass::Lib`] files.
    pub lib_only: bool,
    /// Rule master switch.
    pub enabled: bool,
    /// Suppression directives must carry a justification string to take
    /// effect (read from the `r8` entry; meaningless on other rules).
    pub require_reason: bool,
}

impl RuleCfg {
    /// Whether the rule covers `crate_key` (a crate directory name).
    pub fn applies_to_crate(&self, crate_key: &str) -> bool {
        match &self.crates {
            None => true,
            Some(set) => set.contains(crate_key),
        }
    }

    /// Whether the rule covers this file class.
    pub fn applies_to_class(&self, class: FileClass) -> bool {
        !self.lib_only || class == FileClass::Lib
    }
}

/// The full lint configuration: an ordered list of (rule id, config).
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Rules in evaluation order.
    pub rules: Vec<(String, RuleCfg)>,
}

fn set(names: &[&str]) -> Option<BTreeSet<String>> {
    Some(names.iter().map(|s| s.to_string()).collect())
}

impl LintConfig {
    /// The built-in defaults (mirrored by the shipped `simlint.toml`):
    ///
    /// | rule | scope | test code | classes |
    /// |------|-------|-----------|---------|
    /// | r1 containers/rng | sim, disk, alloc, workloads, fs | linted | all |
    /// | r2 wall clock     | sim, disk, alloc, workloads, fs | linted | all |
    /// | r3 unwrap/panic   | all but `core` (the runner/app layer) | skipped | lib |
    /// | r4 unsafe         | everywhere | linted | all |
    /// | r5 narrowing `as` | disk, alloc, sim | skipped | lib |
    /// | r6 f64 `sum()`    | sim, disk, alloc, workloads, fs | skipped | all |
    /// | r7 dead config    | sim, disk, alloc, workloads, fs | skipped | lib |
    /// | r8 stale allow    | everywhere | linted | all |
    /// | r9 float `==`     | sim, disk, alloc, workloads, fs | skipped | lib |
    pub fn default_config() -> Self {
        let sim_crates = ["sim", "disk", "alloc", "workloads", "fs"];
        let rule = |crates: Option<std::collections::BTreeSet<String>>,
                    skip_test_code: bool,
                    lib_only: bool| RuleCfg {
            crates,
            skip_test_code,
            lib_only,
            enabled: true,
            require_reason: true,
        };
        let rules = vec![
            ("r1".to_string(), rule(set(&sim_crates), false, false)),
            ("r2".to_string(), rule(set(&sim_crates), false, false)),
            (
                "r3".to_string(),
                rule(
                    set(&["sim", "disk", "alloc", "workloads", "fs", "bench", "simlint", "readopt"]),
                    true,
                    true,
                ),
            ),
            ("r4".to_string(), rule(None, false, false)),
            ("r5".to_string(), rule(set(&["disk", "alloc", "sim"]), true, true)),
            ("r6".to_string(), rule(set(&sim_crates), true, false)),
            ("r7".to_string(), rule(set(&sim_crates), true, true)),
            ("r8".to_string(), rule(None, false, false)),
            ("r9".to_string(), rule(set(&sim_crates), true, true)),
        ];
        LintConfig { rules }
    }

    /// Applies `simlint.toml` text over the defaults. Unknown sections or
    /// keys are errors — a config that silently does nothing is worse than
    /// a loud one.
    pub fn apply_toml(&mut self, text: &str) -> Result<(), String> {
        let mut current: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let section = section.trim();
                let Some(rule) = section.strip_prefix("rules.") else {
                    return Err(format!("simlint.toml:{}: unknown section [{section}]", lineno + 1));
                };
                if !self.rules.iter().any(|(id, _)| id == rule) {
                    return Err(format!("simlint.toml:{}: unknown rule `{rule}`", lineno + 1));
                }
                current = Some(rule.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("simlint.toml:{}: expected `key = value`", lineno + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(rule_id) = current.clone() else {
                return Err(format!("simlint.toml:{}: `{key}` outside a [rules.*] section", lineno + 1));
            };
            let Some(cfg) = self
                .rules
                .iter_mut()
                .find(|(id, _)| *id == rule_id)
                .map(|(_, c)| c)
            else {
                return Err(format!("simlint.toml:{}: unknown rule `{rule_id}`", lineno + 1));
            };
            match key {
                "crates" => cfg.crates = Some(parse_string_array(value, lineno + 1)?),
                "all_crates" => {
                    if parse_bool(value, lineno + 1)? {
                        cfg.crates = None;
                    }
                }
                "skip_test_code" => cfg.skip_test_code = parse_bool(value, lineno + 1)?,
                "lib_only" => cfg.lib_only = parse_bool(value, lineno + 1)?,
                "enabled" => cfg.enabled = parse_bool(value, lineno + 1)?,
                "require_reason" => cfg.require_reason = parse_bool(value, lineno + 1)?,
                other => {
                    return Err(format!("simlint.toml:{}: unknown key `{other}`", lineno + 1));
                }
            }
        }
        Ok(())
    }
}

fn strip_toml_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(v: &str, lineno: usize) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("simlint.toml:{lineno}: expected true/false, got `{other}`")),
    }
}

fn parse_string_array(v: &str, lineno: usize) -> Result<BTreeSet<String>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("simlint.toml:{lineno}: expected [\"a\", \"b\"], got `{v}`"))?;
    let mut out = BTreeSet::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("simlint.toml:{lineno}: array items must be quoted strings"))?;
        out.insert(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_all_nine_rules_enabled() {
        let cfg = LintConfig::default_config();
        let ids: Vec<&str> = cfg.rules.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, vec!["r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"]);
        assert!(cfg.rules.iter().all(|(_, c)| c.enabled));
        assert!(cfg.rules.iter().all(|(_, c)| c.require_reason));
    }

    #[test]
    fn toml_rescopes_a_rule() {
        let mut cfg = LintConfig::default_config();
        cfg.apply_toml("# comment\n[rules.r5]\ncrates = [\"disk\"] # trailing\nskip_test_code = false\n")
            .unwrap();
        let r5 = &cfg.rules.iter().find(|(id, _)| id == "r5").unwrap().1;
        assert!(r5.applies_to_crate("disk"));
        assert!(!r5.applies_to_crate("alloc"));
        assert!(!r5.skip_test_code);
    }

    #[test]
    fn toml_can_disable_and_widen() {
        let mut cfg = LintConfig::default_config();
        cfg.apply_toml("[rules.r2]\nenabled = false\n[rules.r3]\nall_crates = true\n").unwrap();
        assert!(!cfg.rules.iter().find(|(id, _)| id == "r2").unwrap().1.enabled);
        assert!(cfg.rules.iter().find(|(id, _)| id == "r3").unwrap().1.applies_to_crate("core"));
    }

    #[test]
    fn toml_rejects_unknown_rules_keys_and_sections() {
        let mut cfg = LintConfig::default_config();
        assert!(cfg.apply_toml("[rules.r12]\n").is_err());
        assert!(cfg.apply_toml("[rules.r1]\nfrobnicate = true\n").is_err());
        assert!(cfg.apply_toml("[weird]\n").is_err());
        assert!(cfg.apply_toml("orphan = true\n").is_err());
    }

    #[test]
    fn toml_can_waive_reasons_on_r8() {
        let mut cfg = LintConfig::default_config();
        cfg.apply_toml("[rules.r8]\nrequire_reason = false\n").unwrap();
        assert!(!cfg.rules.iter().find(|(id, _)| id == "r8").unwrap().1.require_reason);
    }

    #[test]
    fn new_rule_scopes_match_their_purpose() {
        let cfg = LintConfig::default_config();
        let get = |id: &str| &cfg.rules.iter().find(|(rid, _)| rid == id).unwrap().1;
        assert!(get("r7").applies_to_crate("sim") && !get("r7").applies_to_crate("core"));
        assert!(get("r7").lib_only && get("r9").lib_only);
        assert!(get("r8").applies_to_crate("core"), "the audit covers every crate");
        assert!(get("r8").applies_to_class(FileClass::TestFile));
        assert!(!get("r9").applies_to_crate("simlint"), "the linter compares token text, not sim floats");
    }

    #[test]
    fn class_and_crate_scoping() {
        let cfg = LintConfig::default_config();
        let r3 = &cfg.rules.iter().find(|(id, _)| id == "r3").unwrap().1;
        assert!(r3.applies_to_crate("alloc"));
        assert!(!r3.applies_to_crate("core"), "core is the runner/app layer");
        assert!(r3.applies_to_class(FileClass::Lib));
        assert!(!r3.applies_to_class(FileClass::Bin));
        let r4 = &cfg.rules.iter().find(|(id, _)| id == "r4").unwrap().1;
        assert!(r4.applies_to_crate("core"));
        assert!(r4.applies_to_class(FileClass::TestFile));
    }
}
