//! A small hand-rolled Rust lexer.
//!
//! Produces exactly the token stream the rule engine needs: identifiers,
//! lifetimes, literals, single-character punctuation, and comments (kept,
//! because suppression directives live in them). The tricky parts are the
//! ones that would otherwise cause false positives — rule tokens inside
//! string literals, raw strings, char literals, or comments must never
//! reach the rule engine as identifiers:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments,
//! * string literals with escapes (`"\""`),
//! * raw strings `r"…"`, `r#"…"#` (any hash depth) and their byte/C
//!   variants `br…`, `cr…`, `b"…"`, `c"…"`,
//! * char literals vs. lifetimes (`'a'` vs `'a`),
//! * raw identifiers (`r#fn`).

/// What a token is. The rule engine mostly cares about `Ident` and `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `as`, `unsafe`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Any string-like literal (string, raw string, byte string, char).
    Str,
    /// A numeric literal (suffix included: `1u64` is one token).
    Num,
    /// A single punctuation character.
    Punct,
    /// A `//` comment (text excludes the newline).
    LineComment,
    /// A `/* … */` comment (text includes the delimiters).
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text. For `Str` tokens the delimiters are included; for
    /// `LineComment` the leading `//` is included.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

/// Lexes `src` into tokens. Never fails: unterminated constructs simply
/// extend to end-of-file, which is the conservative choice for a linter
/// (the compiler will reject the file anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer { chars: src.chars().collect(), i: 0, line: 1, out: Vec::new() };
    lx.run();
    lx.out
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_whitespace() => self.i += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.lifetime_or_char(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                c => {
                    self.push(TokKind::Punct, c.to_string(), self.line);
                    self.i += 1;
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::LineComment, text, self.line);
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.i += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::BlockComment, text, line);
    }

    /// A `"…"` literal with backslash escapes. `self.i` is at the quote.
    fn string_literal(&mut self) {
        let start = self.i;
        let line = self.line;
        self.i += 1; // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.i += 2; // skip the escaped char (may be a quote)
                continue;
            }
            if c == '\n' {
                self.line += 1;
            }
            self.i += 1;
            if c == '"' {
                break;
            }
        }
        let end = self.i.min(self.chars.len());
        let text: String = self.chars[start..end].iter().collect();
        self.push(TokKind::Str, text, line);
    }

    /// A raw string starting at `self.i` = first `#` or quote (after the
    /// `r`/`br`/`cr` prefix has been consumed by the caller).
    fn raw_string_body(&mut self, start: usize, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.i += 1;
        }
        debug_assert_eq!(self.peek(0), Some('"'));
        self.i += 1; // opening quote
        'outer: while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
            }
            self.i += 1;
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                self.i += hashes;
                break;
            }
        }
        let end = self.i.min(self.chars.len());
        let text: String = self.chars[start..end].iter().collect();
        self.push(TokKind::Str, text, line);
    }

    /// Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'('`).
    fn lifetime_or_char(&mut self) {
        let start = self.i;
        let line = self.line;
        match self.peek(1) {
            Some(c) if is_ident_start(c) => {
                // Scan the ident run after the quote: a closing quote right
                // after it means a char literal ('x'), otherwise lifetime.
                let mut j = self.i + 1;
                while self.chars.get(j).is_some_and(|&c| is_ident_continue(c)) {
                    j += 1;
                }
                if self.chars.get(j) == Some(&'\'') {
                    self.i = j + 1;
                    let text: String = self.chars[start..self.i].iter().collect();
                    self.push(TokKind::Str, text, line);
                } else {
                    self.i = j;
                    let text: String = self.chars[start..self.i].iter().collect();
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            _ => {
                // '\n', '\'', '(' … — a char literal with possible escape.
                self.i += 1;
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        self.i += 2;
                        continue;
                    }
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.i += 1;
                    if c == '\'' {
                        break;
                    }
                }
                let end = self.i.min(self.chars.len());
                let text: String = self.chars[start..end].iter().collect();
                self.push(TokKind::Str, text, line);
            }
        }
    }

    /// A number, including any type suffix (`1u64`) and a fractional part
    /// (`1.5`) — but not `..` range punctuation.
    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.i += 1;
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                self.i += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Num, text, line);
    }

    /// An identifier — or one of the literal prefixes `r"`, `r#"`, `b"`,
    /// `b'`, `br`, `c"`, `cr`, or a raw identifier `r#name`.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.i;
        let line = self.line;
        let c = self.chars[self.i];

        // Raw-string / byte-string / C-string prefixes.
        let (raw, skip) = match (c, self.peek(1), self.peek(2)) {
            ('r', Some('"'), _) | ('r', Some('#'), _) => (true, 1),
            ('b', Some('r'), Some('"')) | ('b', Some('r'), Some('#')) => (true, 2),
            ('c', Some('r'), Some('"')) | ('c', Some('r'), Some('#')) => (true, 2),
            ('b', Some('"'), _) | ('c', Some('"'), _) => (false, 1),
            ('b', Some('\''), _) => {
                self.i += 1;
                self.lifetime_or_char();
                // Re-tag: b'x' came out as whatever lifetime_or_char chose;
                // prepend the prefix to keep the text faithful.
                if let Some(last) = self.out.last_mut() {
                    last.text.insert(0, 'b');
                    last.kind = TokKind::Str;
                }
                return;
            }
            _ => (false, 0),
        };
        if skip > 0 {
            if raw {
                // `r#…`: a raw *identifier* if what follows the single hash
                // is an ident start rather than a quote.
                let after_hash = if self.peek(skip) == Some('#') { self.peek(skip + 1) } else { None };
                let is_raw_ident =
                    skip == 1 && after_hash.is_some_and(is_ident_start) && self.peek(skip) == Some('#');
                if is_raw_ident {
                    self.i += 2; // r#
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.i += 1;
                    }
                    let text: String = self.chars[start..self.i].iter().collect();
                    self.push(TokKind::Ident, text, line);
                    return;
                }
                // Hash run must end in a quote to be a raw string.
                let mut k = skip;
                while self.peek(k) == Some('#') {
                    k += 1;
                }
                if self.peek(k) == Some('"') {
                    self.i += skip;
                    self.raw_string_body(start, line);
                    return;
                }
            } else {
                self.i += skip;
                self.string_literal();
                // Fix up: include the prefix characters in the token text.
                if let Some(last) = self.out.last_mut() {
                    let prefix: String = self.chars[start..start + skip].iter().collect();
                    last.text.insert_str(0, &prefix);
                }
                return;
            }
        }

        // Plain identifier / keyword.
        while self.peek(0).is_some_and(is_ident_continue) {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = lex("let x = a.unwrap();");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
    }

    #[test]
    fn sum_turbofish_lexes_to_the_r6_token_shape() {
        // R6 pattern-matches the exact sequence `. sum : : < f64 >`; pin it
        // here so a lexer change (e.g. fusing `::` into one token) cannot
        // silently disarm the rule.
        let toks = lex("xs.iter().sum::<f64>()");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["xs", ".", "iter", "(", ")", ".", "sum", ":", ":", "<", "f64", ">", "(", ")"]
        );
        let f64_tok = toks.iter().find(|t| t.text == "f64").unwrap();
        assert_eq!(f64_tok.kind, TokKind::Ident, "`f64` in a turbofish is an ident");
        // `1.5f64` is one number token — a float suffix never produces the
        // ident the rule looks for.
        let toks = lex("let x = 1.5f64;");
        assert!(toks.iter().all(|t| t.text != "f64"));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn rule_tokens_in_strings_are_not_idents() {
        assert!(idents(r#"let s = "HashMap::unwrap() panic!";"#)
            .iter()
            .all(|t| t != "HashMap" && t != "unwrap" && t != "panic"));
    }

    #[test]
    fn rule_tokens_in_comments_are_not_idents() {
        assert!(idents("// HashMap unwrap()\n/* panic! *//*nested /* unsafe */ done*/ x")
            .iter()
            .all(|t| t == "x"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r####"let s = r#"quote " inside HashMap"#; y"####;
        assert_eq!(idents(src), vec!["let", "s", "y"]);
        let src2 = "let s = r\"no escape \\\"; let t = HashMap;";
        // In a raw string, \" does not escape: the string ends at the first
        // quote, so HashMap *is* code here.
        assert!(idents(src2).contains(&"HashMap".to_string()));
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let src = r#"let s = "a \" HashMap \\"; t"#;
        assert_eq!(idents(src), vec!["let", "s", "t"]);
    }

    #[test]
    fn byte_and_c_strings() {
        let src = "g(b\"unwrap()\", b'q', c\"panic!\", cr\"HashMap\", br\"unsafe\")";
        assert_eq!(idents(src), vec!["g"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; 'outer: loop {} }";
        let toks = lex(src);
        let lifetimes: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'outer"]);
        let strs: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text.as_str()).collect();
        assert_eq!(strs, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "r#type"));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = lex("0..10u64; 1.5f64; 0xff");
        let nums: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.as_str()).collect();
        assert_eq!(nums, vec!["0", "10u64", "1.5f64", "0xff"]);
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panic() {
        let toks = lex("let s = \"never closed\nHashMap");
        assert!(toks.iter().all(|t| !t.is_ident("HashMap")));
    }

    #[test]
    fn multiline_string_counts_lines() {
        let toks = lex("let s = \"a\nb\nc\";\nx");
        let x = toks.iter().find(|t| t.is_ident("x")).map(|t| t.line);
        assert_eq!(x, Some(4));
    }
}
