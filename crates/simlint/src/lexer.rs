//! A small hand-rolled Rust lexer.
//!
//! Produces exactly the token stream the rule engine needs: identifiers,
//! lifetimes, literals, single-character punctuation, and comments (kept,
//! because suppression directives live in them). The tricky parts are the
//! ones that would otherwise cause false positives — rule tokens inside
//! string literals, raw strings, char literals, or comments must never
//! reach the rule engine as identifiers:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments,
//! * string literals with escapes (`"\""`),
//! * raw strings `r"…"`, `r#"…"#` (any hash depth) and their byte/C
//!   variants `br…`, `cr…`, `b"…"`, `c"…"`,
//! * char literals vs. lifetimes (`'a'` vs `'a`),
//! * raw identifiers (`r#fn`).
//!
//! Every token carries its full source position — 1-based line and column
//! plus a byte span — so diagnostics are clickable and machine-diffable
//! (the `simlint.json` v2 schema exposes both).

/// What a token is. The rule engine mostly cares about `Ident` and `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `as`, `unsafe`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Any string-like literal (string, raw string, byte string, char).
    Str,
    /// A numeric literal (suffix included: `1u64` is one token).
    Num,
    /// A single punctuation character.
    Punct,
    /// A `//` comment (text excludes the newline).
    LineComment,
    /// A `/* … */` comment (text includes the delimiters).
    BlockComment,
}

/// One lexed token with its full source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text. For `Str` tokens the delimiters are included; for
    /// `LineComment` the leading `//` is included.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based character column of the token's first character.
    pub col: u32,
    /// Byte offset of the token's first character.
    pub byte_start: u32,
    /// Length of the token in bytes.
    pub byte_len: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// The half-open byte span `[start, end)` of the token.
    pub fn span(&self) -> (u32, u32) {
        (self.byte_start, self.byte_start + self.byte_len)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    /// `byte_of[i]` = byte offset of `chars[i]`; one extra entry for EOF.
    byte_of: Vec<u32>,
    i: usize,
    line: u32,
    /// Char index of the first character of the current line.
    line_start: usize,
    out: Vec<Tok>,
}

/// Lexes `src` into tokens. Never fails: unterminated constructs simply
/// extend to end-of-file, which is the conservative choice for a linter
/// (the compiler will reject the file anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut chars = Vec::with_capacity(src.len());
    let mut byte_of = Vec::with_capacity(src.len() + 1);
    // Source files are far below 4 GB, so offsets fit u32.
    for (off, c) in src.char_indices() {
        byte_of.push(off as u32);
        chars.push(c);
    }
    byte_of.push(src.len() as u32);
    let mut lx = Lexer { chars, byte_of, i: 0, line: 1, line_start: 0, out: Vec::new() };
    lx.run();
    lx.out
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// 1-based column of the character at `idx`, relative to the line start
    /// captured in `line_start`. Only valid while `idx` is on the current
    /// line — call it at token start, before consuming newlines.
    fn col_of(&self, idx: usize) -> u32 {
        (idx - self.line_start) as u32 + 1
    }

    /// Records that `chars[idx]` is a newline (the caller advances `i`).
    fn newline_at(&mut self, idx: usize) {
        self.line += 1;
        self.line_start = idx + 1;
    }

    /// Pushes the token spanning `chars[start..self.i]`.
    fn push_span(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        let end = self.i.min(self.chars.len());
        let text: String = self.chars[start..end].iter().collect();
        let byte_start = self.byte_of[start];
        let byte_len = self.byte_of[end] - byte_start;
        self.out.push(Tok { kind, text, line, col, byte_start, byte_len });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.newline_at(self.i);
                    self.i += 1;
                }
                c if c.is_whitespace() => self.i += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.lifetime_or_char(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    let (start, line, col) = (self.i, self.line, self.col_of(self.i));
                    self.i += 1;
                    self.push_span(TokKind::Punct, start, line, col);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col_of(self.i));
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.i += 1;
        }
        self.push_span(TokKind::LineComment, start, line, col);
    }

    fn block_comment(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col_of(self.i));
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.i += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if c == '\n' {
                    self.newline_at(self.i);
                }
                self.i += 1;
            }
        }
        self.push_span(TokKind::BlockComment, start, line, col);
    }

    /// A `"…"` literal with backslash escapes. `self.i` is at the quote.
    fn string_literal(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col_of(self.i));
        self.i += 1; // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.i += 2; // skip the escaped char (may be a quote)
                continue;
            }
            if c == '\n' {
                self.newline_at(self.i);
            }
            self.i += 1;
            if c == '"' {
                break;
            }
        }
        self.push_span(TokKind::Str, start, line, col);
    }

    /// A raw string starting at `self.i` = first `#` or quote. `start`,
    /// `line`, and `col` locate the `r`/`br`/`cr` prefix the caller already
    /// consumed, so the emitted token covers the whole literal.
    fn raw_string_body(&mut self, start: usize, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.i += 1;
        }
        debug_assert_eq!(self.peek(0), Some('"'));
        self.i += 1; // opening quote
        'outer: while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.newline_at(self.i);
            }
            self.i += 1;
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                self.i += hashes;
                break;
            }
        }
        self.push_span(TokKind::Str, start, line, col);
    }

    /// Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'('`). `start` may
    /// sit before `self.i` when the caller consumed a `b` prefix.
    fn lifetime_or_char(&mut self) {
        self.lifetime_or_char_from(self.i, self.line, self.col_of(self.i));
    }

    fn lifetime_or_char_from(&mut self, start: usize, line: u32, col: u32) {
        match self.peek(1) {
            Some(c) if is_ident_start(c) => {
                // Scan the ident run after the quote: a closing quote right
                // after it means a char literal ('x'), otherwise lifetime.
                let mut j = self.i + 1;
                while self.chars.get(j).is_some_and(|&c| is_ident_continue(c)) {
                    j += 1;
                }
                if self.chars.get(j) == Some(&'\'') {
                    self.i = j + 1;
                    self.push_span(TokKind::Str, start, line, col);
                } else {
                    self.i = j;
                    self.push_span(TokKind::Lifetime, start, line, col);
                }
            }
            _ => {
                // '\n', '\'', '(' … — a char literal with possible escape.
                self.i += 1;
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        self.i += 2;
                        continue;
                    }
                    if c == '\n' {
                        self.newline_at(self.i);
                    }
                    self.i += 1;
                    if c == '\'' {
                        break;
                    }
                }
                self.push_span(TokKind::Str, start, line, col);
            }
        }
    }

    /// A number, including any type suffix (`1u64`) and a fractional part
    /// (`1.5`) — but not `..` range punctuation.
    fn number(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col_of(self.i));
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.i += 1;
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                self.i += 1;
            } else {
                break;
            }
        }
        self.push_span(TokKind::Num, start, line, col);
    }

    /// An identifier — or one of the literal prefixes `r"`, `r#"`, `b"`,
    /// `b'`, `br`, `c"`, `cr`, or a raw identifier `r#name`.
    fn ident_or_prefixed_literal(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col_of(self.i));
        let c = self.chars[self.i];

        // Raw-string / byte-string / C-string prefixes.
        let (raw, skip) = match (c, self.peek(1), self.peek(2)) {
            ('r', Some('"'), _) | ('r', Some('#'), _) => (true, 1),
            ('b', Some('r'), Some('"')) | ('b', Some('r'), Some('#')) => (true, 2),
            ('c', Some('r'), Some('"')) | ('c', Some('r'), Some('#')) => (true, 2),
            ('b', Some('"'), _) | ('c', Some('"'), _) => (false, 1),
            ('b', Some('\''), _) => {
                self.i += 1;
                self.lifetime_or_char_from(start, line, col);
                // b'x' came out as whatever lifetime_or_char chose; re-tag
                // it as a string-like literal.
                if let Some(last) = self.out.last_mut() {
                    last.kind = TokKind::Str;
                }
                return;
            }
            _ => (false, 0),
        };
        if skip > 0 {
            if raw {
                // `r#…`: a raw *identifier* if what follows the single hash
                // is an ident start rather than a quote.
                let after_hash = if self.peek(skip) == Some('#') { self.peek(skip + 1) } else { None };
                let is_raw_ident =
                    skip == 1 && after_hash.is_some_and(is_ident_start) && self.peek(skip) == Some('#');
                if is_raw_ident {
                    self.i += 2; // r#
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.i += 1;
                    }
                    self.push_span(TokKind::Ident, start, line, col);
                    return;
                }
                // Hash run must end in a quote to be a raw string.
                let mut k = skip;
                while self.peek(k) == Some('#') {
                    k += 1;
                }
                if self.peek(k) == Some('"') {
                    self.i += skip;
                    self.raw_string_body(start, line, col);
                    return;
                }
            } else {
                self.i += skip;
                // Re-lex the quoted body, then widen the emitted token to
                // cover the prefix characters too.
                let quote_start = self.i;
                self.string_literal();
                if let Some(last) = self.out.last_mut() {
                    let prefix: String = self.chars[start..quote_start].iter().collect();
                    last.text.insert_str(0, &prefix);
                    last.col = col;
                    let widen = self.byte_of[quote_start] - self.byte_of[start];
                    last.byte_start -= widen;
                    last.byte_len += widen;
                }
                return;
            }
        }

        // Plain identifier / keyword.
        while self.peek(0).is_some_and(is_ident_continue) {
            self.i += 1;
        }
        self.push_span(TokKind::Ident, start, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = lex("let x = a.unwrap();");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
    }

    #[test]
    fn sum_turbofish_lexes_to_the_r6_token_shape() {
        // R6 pattern-matches the exact sequence `. sum : : < f64 >`; pin it
        // here so a lexer change (e.g. fusing `::` into one token) cannot
        // silently disarm the rule.
        let toks = lex("xs.iter().sum::<f64>()");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["xs", ".", "iter", "(", ")", ".", "sum", ":", ":", "<", "f64", ">", "(", ")"]
        );
        let f64_tok = toks.iter().find(|t| t.text == "f64").unwrap();
        assert_eq!(f64_tok.kind, TokKind::Ident, "`f64` in a turbofish is an ident");
        // `1.5f64` is one number token — a float suffix never produces the
        // ident the rule looks for.
        let toks = lex("let x = 1.5f64;");
        assert!(toks.iter().all(|t| t.text != "f64"));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn columns_and_spans_are_exact() {
        //         123456789012345
        let src = "let x = 42;\n  foo.bar";
        let toks = lex(src);
        let pos: Vec<(&str, u32, u32)> =
            toks.iter().map(|t| (t.text.as_str(), t.line, t.col)).collect();
        assert_eq!(
            pos,
            vec![
                ("let", 1, 1),
                ("x", 1, 5),
                ("=", 1, 7),
                ("42", 1, 9),
                (";", 1, 11),
                ("foo", 2, 3),
                (".", 2, 6),
                ("bar", 2, 7),
            ]
        );
        for t in &toks {
            let (s, e) = t.span();
            assert_eq!(&src[s as usize..e as usize], t.text, "span must slice back to the text");
        }
    }

    #[test]
    fn spans_survive_multibyte_chars() {
        let src = "let ä = \"π\"; x";
        for t in lex(src) {
            let (s, e) = t.span();
            assert_eq!(&src[s as usize..e as usize], t.text);
        }
    }

    #[test]
    fn col_resets_after_multiline_tokens() {
        let src = "/* a\n   b */ x\nlet s = \"m\nn\"; y";
        let toks = lex(src);
        let x = toks.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!((x.line, x.col), (2, 9));
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!((y.line, y.col), (4, 5));
    }

    #[test]
    fn prefixed_literal_spans_cover_the_prefix() {
        let src = "g(b\"abc\", b'q')";
        let toks = lex(src);
        for t in toks.iter().filter(|t| t.kind == TokKind::Str) {
            let (s, e) = t.span();
            assert_eq!(&src[s as usize..e as usize], t.text);
            assert!(t.text.starts_with('b'));
        }
    }

    #[test]
    fn rule_tokens_in_strings_are_not_idents() {
        assert!(idents(r#"let s = "HashMap::unwrap() panic!";"#)
            .iter()
            .all(|t| t != "HashMap" && t != "unwrap" && t != "panic"));
    }

    #[test]
    fn rule_tokens_in_comments_are_not_idents() {
        assert!(idents("// HashMap unwrap()\n/* panic! *//*nested /* unsafe */ done*/ x")
            .iter()
            .all(|t| t == "x"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r####"let s = r#"quote " inside HashMap"#; y"####;
        assert_eq!(idents(src), vec!["let", "s", "y"]);
        let src2 = "let s = r\"no escape \\\"; let t = HashMap;";
        // In a raw string, \" does not escape: the string ends at the first
        // quote, so HashMap *is* code here.
        assert!(idents(src2).contains(&"HashMap".to_string()));
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let src = r#"let s = "a \" HashMap \\"; t"#;
        assert_eq!(idents(src), vec!["let", "s", "t"]);
    }

    #[test]
    fn byte_and_c_strings() {
        let src = "g(b\"unwrap()\", b'q', c\"panic!\", cr\"HashMap\", br\"unsafe\")";
        assert_eq!(idents(src), vec!["g"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; 'outer: loop {} }";
        let toks = lex(src);
        let lifetimes: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'outer"]);
        let strs: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text.as_str()).collect();
        assert_eq!(strs, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "r#type"));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = lex("0..10u64; 1.5f64; 0xff");
        let nums: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.as_str()).collect();
        assert_eq!(nums, vec!["0", "10u64", "1.5f64", "0xff"]);
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panic() {
        let toks = lex("let s = \"never closed\nHashMap");
        assert!(toks.iter().all(|t| !t.is_ident("HashMap")));
    }

    #[test]
    fn multiline_string_counts_lines() {
        let toks = lex("let s = \"a\nb\nc\";\nx");
        let x = toks.iter().find(|t| t.is_ident("x")).map(|t| t.line);
        assert_eq!(x, Some(4));
    }
}
