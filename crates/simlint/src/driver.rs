//! Workspace discovery and the top-level lint run.
//!
//! Walks every non-vendored workspace crate (`crates/*` except
//! `crates/vendor`, plus the root `readopt` facade package with its
//! `tests/` and `examples/`), classifies each `.rs` file by target kind,
//! and runs the two-layer rule engine over it:
//!
//! 1. every file is read, lexed, and parsed **once**; the parsed items
//!    feed the workspace symbol table ([`crate::symbols`]) and the
//!    use-graph ([`crate::usage`]);
//! 2. each file's local rules produce pre-suppression hits
//!    ([`crate::rules::analyze_file`]), the cross-file r7 hits are merged
//!    in, and [`crate::rules::finalize`] applies suppressions and the r8
//!    staleness audit.
//!
//! Directory walks are sorted so output order — and the JSON snapshot —
//! is itself deterministic. Directories named `fixtures` are never
//! entered: `crates/simlint/tests/fixtures/` holds *deliberately* dirty
//! sources for the linter's own integration tests.

use crate::config::{FileClass, LintConfig};
use crate::lexer::lex;
use crate::parse::parse_file;
use crate::rules::{analyze_file, dead_config_hits, finalize, FileInput, Finding};
use crate::symbols::{build_symbols, FileSyms};
use crate::usage::collect_reads;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Result of a workspace run.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files linted (with a crate filter, the filtered
    /// count — symbol/usage collection always covers the whole workspace).
    pub files_scanned: usize,
}

impl Report {
    /// True when the gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// One file scheduled for linting.
#[derive(Debug)]
struct WorkItem {
    path: PathBuf,
    rel: String,
    crate_key: String,
    class: FileClass,
}

/// Runs the lint over the workspace rooted at `root`, honoring an optional
/// `simlint.toml` at the root.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let mut config = LintConfig::default_config();
    let toml_path = root.join("simlint.toml");
    if toml_path.is_file() {
        let text = fs::read_to_string(&toml_path)
            .map_err(|e| format!("read {}: {e}", toml_path.display()))?;
        config.apply_toml(&text)?;
    }
    run_workspace_with(root, &config)
}

/// Like [`run_workspace`] but with an explicit configuration.
pub fn run_workspace_with(root: &Path, config: &LintConfig) -> Result<Report, String> {
    run_workspace_filtered(root, config, None)
}

/// Like [`run_workspace_with`], optionally restricted to a set of crate
/// keys. The restriction applies to which files are *linted* (and counted
/// in `files_scanned`); symbol-table and use-graph collection always spans
/// the full workspace, so r7's "read anywhere" stays accurate under a
/// filter.
pub fn run_workspace_filtered(
    root: &Path,
    config: &LintConfig,
    only_crates: Option<&BTreeSet<String>>,
) -> Result<Report, String> {
    let items = discover(root)?;

    // Pass 1: read + lex + parse everything once.
    let mut sources = Vec::with_capacity(items.len());
    for item in &items {
        let src = fs::read_to_string(&item.path)
            .map_err(|e| format!("read {}: {e}", item.path.display()))?;
        sources.push(src);
    }
    let lexed: Vec<_> = sources.iter().map(|s| lex(s)).collect();
    let parsed: Vec<_> = lexed.iter().map(|t| parse_file(t)).collect();

    // Workspace-wide symbol table and read set.
    let syms_input: Vec<FileSyms<'_>> = items
        .iter()
        .zip(&parsed)
        .map(|(item, p)| FileSyms {
            path: &item.rel,
            crate_key: &item.crate_key,
            class: item.class,
            parsed: p,
        })
        .collect();
    let symbols = build_symbols(&syms_input);
    let mut reads = BTreeSet::new();
    for ((item, toks), p) in items.iter().zip(&lexed).zip(&parsed) {
        reads.extend(collect_reads(toks, p, item.class));
    }

    // Cross-file r7 hits, grouped by declaring file.
    let mut r7_by_path: BTreeMap<String, Vec<_>> = BTreeMap::new();
    for (path, hit) in dead_config_hits(&symbols, &reads, &config.rules) {
        r7_by_path.entry(path).or_default().push(hit);
    }

    // Pass 2: per-file local analysis, r7 merge, finalize.
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for (i, item) in items.iter().enumerate() {
        if only_crates.is_some_and(|set| !set.contains(&item.crate_key)) {
            continue;
        }
        files_scanned += 1;
        let input = FileInput {
            path: &item.rel,
            crate_key: &item.crate_key,
            class: item.class,
            src: &sources[i],
        };
        let mut analysis = analyze_file(&input, &lexed[i], &parsed[i], &config.rules, &symbols);
        if let Some(hits) = r7_by_path.remove(&item.rel) {
            analysis.raw.extend(hits);
        }
        findings.extend(finalize(&item.rel, &item.crate_key, item.class, &analysis, &config.rules));
    }
    findings.sort();
    Ok(Report { findings, files_scanned })
}

/// Enumerates every file to lint, sorted for deterministic output.
fn discover(root: &Path) -> Result<Vec<WorkItem>, String> {
    let mut items = Vec::new();

    // Member crates: crates/* with a Cargo.toml, minus the vendored tree.
    let crates_dir = root.join("crates");
    for dir in sorted_dirs(&crates_dir)? {
        let key = file_name(&dir);
        if key == "vendor" || !dir.join("Cargo.toml").is_file() {
            continue;
        }
        collect_crate(&dir, root, &key, &mut items)?;
    }

    // The root facade package.
    if root.join("Cargo.toml").is_file() {
        collect_crate(root, root, "readopt", &mut items)?;
    }

    items.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(items)
}

/// Collects src/tests/benches/examples of one crate directory.
fn collect_crate(
    dir: &Path,
    root: &Path,
    key: &str,
    items: &mut Vec<WorkItem>,
) -> Result<(), String> {
    let groups: [(&str, FileClass); 4] = [
        ("src", FileClass::Lib),
        ("tests", FileClass::TestFile),
        ("benches", FileClass::Bench),
        ("examples", FileClass::Example),
    ];
    for (sub, default_class) in groups {
        let base = dir.join(sub);
        if !base.is_dir() {
            continue;
        }
        // The root package's crates/ subtree is covered by the member walk.
        collect_rs_files(&base, root, key, default_class, items)?;
    }
    Ok(())
}

fn collect_rs_files(
    base: &Path,
    root: &Path,
    key: &str,
    default_class: FileClass,
    items: &mut Vec<WorkItem>,
) -> Result<(), String> {
    let mut stack = vec![base.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in sorted_entries(&dir)? {
            let name = file_name(&entry);
            if entry.is_dir() {
                // Never descend into nested crates, build output, the
                // vendored tree from the root package walk, or the lint
                // test fixtures (deliberately violation-seeded sources).
                if name == "target" || name == "vendor" || name == "crates" || name == "fixtures" {
                    continue;
                }
                stack.push(entry);
                continue;
            }
            if entry.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let rel = entry
                .strip_prefix(root)
                .map_err(|e| format!("strip {}: {e}", entry.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            let class = classify(&rel, default_class);
            items.push(WorkItem { path: entry, rel, crate_key: key.to_string(), class });
        }
    }
    Ok(())
}

/// Refines the directory-derived class: `src/bin/**` and `src/main.rs` are
/// binaries, not library code.
fn classify(rel: &str, default_class: FileClass) -> FileClass {
    if default_class == FileClass::Lib && (rel.contains("/src/bin/") || rel.ends_with("/src/main.rs"))
    {
        FileClass::Bin
    } else {
        default_class
    }
}

fn file_name(p: &Path) -> String {
    p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

fn sorted_entries(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    Ok(sorted_entries(dir)?.into_iter().filter(|p| p.is_dir()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_refines_lib_to_bin() {
        assert_eq!(classify("crates/core/src/bin/repro.rs", FileClass::Lib), FileClass::Bin);
        assert_eq!(classify("crates/simlint/src/main.rs", FileClass::Lib), FileClass::Bin);
        assert_eq!(classify("crates/sim/src/engine.rs", FileClass::Lib), FileClass::Lib);
        assert_eq!(classify("tests/x.rs", FileClass::TestFile), FileClass::TestFile);
    }
}
