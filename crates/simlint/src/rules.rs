//! The determinism & robustness rules (R1–R6) and the per-file engine.
//!
//! Rules operate on the lexed token stream, so tokens inside strings and
//! comments can never fire. Each rule is deny-by-default and can be
//! suppressed inline with a *justified* allow:
//!
//! ```text
//! // simlint::allow(r3, "constructor contract: bad config is a caller bug")
//! ```
//!
//! A trailing suppression applies to its own line; a suppression on a line
//! of its own applies to the next line. A suppression without a reason is
//! itself a finding — the gate stays honest.

use crate::config::{FileClass, RuleCfg};
use crate::lexer::{lex, Tok, TokKind};

/// Stable rule identifiers.
pub const RULE_IDS: [&str; 6] = ["r1", "r2", "r3", "r4", "r5", "r6"];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`r1`…`r6`, or `suppression` for a malformed allow).
    pub rule: String,
    /// Human message.
    pub message: String,
}

impl Finding {
    /// `file:line: rule: message` — the human diagnostic format.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// Everything the engine needs to know about one source file.
#[derive(Debug, Clone)]
pub struct FileInput<'a> {
    /// Workspace-relative path (diagnostics).
    pub path: &'a str,
    /// Directory name of the owning crate (`sim`, `disk`, `readopt`, …).
    pub crate_key: &'a str,
    /// Target class (library, binary, test, bench, example).
    pub class: FileClass,
    /// File contents.
    pub src: &'a str,
}

/// A parsed `simlint::allow` directive.
#[derive(Debug)]
struct Suppression {
    rule: String,
    has_reason: bool,
    /// The line the directive applies to.
    target_line: u32,
    /// The line the comment itself is on.
    comment_line: u32,
    /// Parse problem, if any (unknown rule, bad syntax).
    problem: Option<String>,
}

/// Narrowing `as` targets R5 rejects in unit/time arithmetic.
const NARROWING_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Containers/RNG R1 rejects in simulation crates.
const R1_BANNED: [(&str, &str); 3] = [
    ("HashMap", "use BTreeMap: HashMap iteration order is nondeterministic"),
    ("HashSet", "use BTreeSet: HashSet iteration order is nondeterministic"),
    ("thread_rng", "use the seeded SimRng (crates/sim/src/rng.rs), never an OS-seeded rng"),
];

/// Wall-clock types R2 rejects inside simulation logic.
const R2_BANNED: [&str; 3] = ["SystemTime", "Instant", "UNIX_EPOCH"];

/// Lints one file under the given per-rule configs, returning findings
/// sorted by line.
pub fn lint_file(input: &FileInput<'_>, rules: &[(String, RuleCfg)]) -> Vec<Finding> {
    let toks = lex(input.src);
    let in_test = test_regions(&toks);

    // Code tokens (indices into `toks`) with their test flags.
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let suppressions = collect_suppressions(&toks);

    let mut findings: Vec<Finding> = Vec::new();

    // Malformed suppressions are findings regardless of rule scoping.
    for s in &suppressions {
        if let Some(problem) = &s.problem {
            findings.push(Finding {
                path: input.path.to_string(),
                line: s.comment_line,
                rule: "suppression".into(),
                message: problem.clone(),
            });
        } else if !s.has_reason {
            findings.push(Finding {
                path: input.path.to_string(),
                line: s.comment_line,
                rule: "suppression".into(),
                message: format!(
                    "simlint::allow({}) needs a reason: simlint::allow({}, \"why\")",
                    s.rule, s.rule
                ),
            });
        }
    }

    for (rule_id, cfg) in rules {
        if !cfg.enabled || !cfg.applies_to_crate(input.crate_key) || !cfg.applies_to_class(input.class)
        {
            continue;
        }
        let hits = match rule_id.as_str() {
            "r1" => rule_r1(&toks, &code),
            "r2" => rule_r2(&toks, &code),
            "r3" => rule_r3(&toks, &code),
            "r4" => rule_r4(&toks, &code),
            "r5" => rule_r5(&toks, &code),
            "r6" => rule_r6(&toks, &code),
            _ => Vec::new(),
        };
        for (tok_idx, message) in hits {
            if cfg.skip_test_code && in_test[tok_idx] {
                continue;
            }
            let line = toks[tok_idx].line;
            let suppressed = suppressions.iter().any(|s| {
                s.problem.is_none() && s.has_reason && s.rule == *rule_id && s.target_line == line
            });
            if suppressed {
                continue;
            }
            findings.push(Finding {
                path: input.path.to_string(),
                line,
                rule: rule_id.clone(),
                message,
            });
        }
    }

    findings.sort();
    findings.dedup();
    findings
}

// ---------------------------------------------------------------------------
// Individual rules. Each returns (token index, message) pairs.
// ---------------------------------------------------------------------------

/// R1: nondeterministic containers / OS-seeded randomness.
fn rule_r1(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokKind::Ident {
            continue;
        }
        for (banned, advice) in R1_BANNED {
            if t.text == banned {
                out.push((ti, format!("nondeterministic `{banned}` in a simulation crate; {advice}")));
            }
        }
        // The path `rand::random` (OS entropy) — the method `.random()` on a
        // seeded rng is fine and does not match.
        if t.text == "random"
            && ci >= 3
            && toks[code[ci - 1]].is_punct(':')
            && toks[code[ci - 2]].is_punct(':')
            && toks[code[ci - 3]].is_ident("rand")
        {
            out.push((ti, "`rand::random` draws OS entropy; use the seeded SimRng".into()));
        }
    }
    out
}

/// R2: wall-clock types inside simulation logic.
fn rule_r2(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for &ti in code {
        let t = &toks[ti];
        if t.kind == TokKind::Ident && R2_BANNED.contains(&t.text.as_str()) {
            out.push((
                ti,
                format!(
                    "wall-clock `{}` in simulation logic; simulated time lives in \
                     crates/disk/src/time.rs (profiling belongs in the crates/core runner layer)",
                    t.text
                ),
            ));
        }
    }
    out
}

/// R3: `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!` /
/// `unreachable!` in library code. `assert!`-family macros are allowed —
/// they assert invariants rather than skip error handling. `unreachable!`
/// is denied because "can't happen" branches belong on the error path
/// (`AllocError::CorruptState`-style) or behind a justified suppression:
/// an unjustified one is a latent panic in the simulator's hot loop.
fn rule_r3(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = ci > 0 && toks[code[ci - 1]].is_punct('.');
        let next_paren = ci + 1 < code.len() && toks[code[ci + 1]].is_punct('(');
        let next_bang = ci + 1 < code.len() && toks[code[ci + 1]].is_punct('!');
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => out.push((
                ti,
                format!(".{}() in library code; propagate with `?` via the crate error type", t.text),
            )),
            "panic" if next_bang => out
                .push((ti, "panic! in library code; return an error (or assert an invariant)".into())),
            "todo" | "unimplemented" if next_bang => {
                out.push((ti, format!("{}! left in library code", t.text)));
            }
            "unreachable" if next_bang => out.push((
                ti,
                "unreachable! in library code; return an error (e.g. a CorruptState variant) \
                 or justify with a suppression"
                    .into(),
            )),
            _ => {}
        }
    }
    out
}

/// R4: `unsafe` anywhere outside the vendored crates.
fn rule_r4(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    code.iter()
        .filter(|&&ti| toks[ti].is_ident("unsafe"))
        .map(|&ti| (ti, "unsafe block/impl outside crates/vendor".to_string()))
        .collect()
}

/// R5: narrowing `as` casts (`u64 as u32`, `f64 as f32`, …) on unit/time
/// arithmetic crates. Use `u32::try_from(..)` (or restructure so the value
/// is provably in range and assert it).
fn rule_r5(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        if toks[ti].is_ident("as") && ci + 1 < code.len() {
            let target = &toks[code[ci + 1]];
            if target.kind == TokKind::Ident && NARROWING_TARGETS.contains(&target.text.as_str()) {
                out.push((
                    ti,
                    format!(
                        "narrowing `as {}` cast on unit/time arithmetic; use `{}::try_from` or \
                         keep the wide type",
                        target.text, target.text
                    ),
                ));
            }
        }
    }
    out
}

/// R6: `.sum::<f64>()` in simulation crates. Float addition is not
/// associative, so a sum whose accumulation order is left to the iterator
/// is a determinism hazard the moment the source order changes (parallel
/// merges, set reorderings). Accumulate with an explicit loop in a pinned
/// order — or justify the pinned order with an allow.
fn rule_r6(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        // The token sequence `. sum : : < f64 >`.
        if t.is_ident("sum")
            && ci >= 1
            && toks[code[ci - 1]].is_punct('.')
            && ci + 4 < code.len()
            && toks[code[ci + 1]].is_punct(':')
            && toks[code[ci + 2]].is_punct(':')
            && toks[code[ci + 3]].is_punct('<')
            && toks[code[ci + 4]].is_ident("f64")
        {
            out.push((
                ti,
                "`.sum::<f64>()` leaves float accumulation order to the iterator; \
                 accumulate with an explicit loop in a pinned order"
                    .into(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Marks every token inside a `#[cfg(test)]` / `#[test]` item body (and the
/// attribute itself). Returns one flag per token.
///
/// Limitations (documented): `#[cfg(not(test))]` is recognized and *not*
/// treated as a test region; more exotic cfg expressions that both contain
/// `test` and a `not` are conservatively treated as non-test.
pub fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut ci = 0;
    while ci < code.len() {
        if !(toks[code[ci]].is_punct('#')
            && ci + 1 < code.len()
            && toks[code[ci + 1]].is_punct('['))
        {
            ci += 1;
            continue;
        }
        // Collect the attribute token span `#[ … ]` (brackets nest).
        let attr_start = ci;
        let mut depth = 0usize;
        let mut cj = ci + 1;
        while cj < code.len() {
            if toks[code[cj]].is_punct('[') {
                depth += 1;
            } else if toks[code[cj]].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            cj += 1;
        }
        let attr_end = cj; // index of the closing ']'
        let attr_idents: Vec<&str> = code[attr_start..=attr_end.min(code.len() - 1)]
            .iter()
            .filter(|&&ti| toks[ti].kind == TokKind::Ident)
            .map(|&ti| toks[ti].text.as_str())
            .collect();
        let is_test_attr = match attr_idents.first() {
            Some(&"test") => true,
            Some(&"cfg") | Some(&"cfg_attr") => {
                attr_idents.contains(&"test") && !attr_idents.contains(&"not")
            }
            _ => false,
        };
        if !is_test_attr {
            ci = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut ck = attr_end + 1;
        while ck + 1 < code.len() && toks[code[ck]].is_punct('#') && toks[code[ck + 1]].is_punct('[')
        {
            let mut d = 0usize;
            let mut cm = ck + 1;
            while cm < code.len() {
                if toks[code[cm]].is_punct('[') {
                    d += 1;
                } else if toks[code[cm]].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                cm += 1;
            }
            ck = cm + 1;
        }
        // Find the item body `{ … }` — or a `;` first (e.g. `#[cfg(test)]
        // use foo;`), in which case the item has no body to mark.
        let mut body_open = None;
        let mut cm = ck;
        while cm < code.len() {
            if toks[code[cm]].is_punct('{') {
                body_open = Some(cm);
                break;
            }
            if toks[code[cm]].is_punct(';') {
                break;
            }
            cm += 1;
        }
        let Some(open) = body_open else {
            ci = attr_end + 1;
            continue;
        };
        // Brace-match the body.
        let mut d = 0usize;
        let mut close = open;
        while close < code.len() {
            if toks[code[close]].is_punct('{') {
                d += 1;
            } else if toks[code[close]].is_punct('}') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            close += 1;
        }
        let close = close.min(code.len() - 1);
        // Mark attribute through body (token-index range over *all* tokens,
        // comments included — suppressions in test code stay usable).
        for flag in flags
            .iter_mut()
            .take(code[close] + 1)
            .skip(code[attr_start])
        {
            *flag = true;
        }
        ci = close + 1;
    }
    flags
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Extracts `simlint::allow(rule, "reason")` directives from line comments.
fn collect_suppressions(toks: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    let mut last_code_line = 0u32;
    for t in toks {
        if !t.is_comment() {
            last_code_line = t.line;
            continue;
        }
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments are documentation (they may *describe* the
        // directive, as this crate's own docs do), never directives.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(pos) = t.text.find("simlint::allow") else { continue };
        let rest = &t.text[pos + "simlint::allow".len()..];
        let target_line = if t.line == last_code_line { t.line } else { t.line + 1 };
        match parse_allow_args(rest) {
            Ok((rule, has_reason)) => {
                let problem = if RULE_IDS.contains(&rule.as_str()) {
                    None
                } else {
                    Some(format!("simlint::allow names unknown rule `{rule}` (known: r1..r6)"))
                };
                out.push(Suppression {
                    rule,
                    has_reason,
                    target_line,
                    comment_line: t.line,
                    problem,
                });
            }
            Err(msg) => out.push(Suppression {
                rule: String::new(),
                has_reason: false,
                target_line,
                comment_line: t.line,
                problem: Some(msg),
            }),
        }
    }
    out
}

/// Parses `(rule)` or `(rule, "reason")` from the text following
/// `simlint::allow`. Returns (rule, has_nonempty_reason).
fn parse_allow_args(rest: &str) -> Result<(String, bool), String> {
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err("malformed simlint::allow — expected `(rule, \"reason\")`".into());
    };
    let Some(end) = body.find(')') else {
        return Err("malformed simlint::allow — missing `)`".into());
    };
    let inner = &body[..end];
    let (rule_part, reason_part) = match inner.find(',') {
        Some(c) => (&inner[..c], Some(inner[c + 1..].trim())),
        None => (inner, None),
    };
    let rule = rule_part.trim().to_string();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err("malformed simlint::allow — rule id must be an identifier".into());
    }
    let has_reason = match reason_part {
        Some(r) => r.len() > 2 && r.starts_with('"') && r.ends_with('"'),
        None => false,
    };
    Ok((rule, has_reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;

    fn lint_sim(src: &str) -> Vec<Finding> {
        let cfg = LintConfig::default_config();
        let input =
            FileInput { path: "crates/sim/src/x.rs", crate_key: "sim", class: FileClass::Lib, src };
        lint_file(&input, &cfg.rules)
    }

    fn lint_core(src: &str) -> Vec<Finding> {
        let cfg = LintConfig::default_config();
        let input =
            FileInput { path: "crates/core/src/x.rs", crate_key: "core", class: FileClass::Lib, src };
        lint_file(&input, &cfg.rules)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn r1_fires_on_hashmap_and_thread_rng() {
        let f = lint_sim("use std::collections::HashMap;\nfn f() { let r = thread_rng(); }");
        assert_eq!(rules_of(&f), vec!["r1", "r1"]);
    }

    #[test]
    fn r1_fires_on_rand_random_path_but_not_seeded_method() {
        let f = lint_sim("fn f(rng: &mut SimRng) { let x: u64 = rng.random(); }");
        assert!(f.is_empty(), "{f:?}");
        let f = lint_sim("fn f() { let x: u64 = rand::random(); }");
        assert_eq!(rules_of(&f), vec!["r1"]);
    }

    #[test]
    fn r1_fires_even_in_test_code() {
        let f = lint_sim("#[cfg(test)]\nmod tests { use std::collections::HashMap; }");
        assert_eq!(rules_of(&f), vec!["r1"]);
    }

    #[test]
    fn r2_fires_in_sim_but_not_core() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r2", "r2"]);
        assert!(lint_core(src).is_empty(), "core is the profiling/runner layer");
    }

    #[test]
    fn r3_fires_on_unwrap_expect_panic_only_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"y\") }\n\
                   fn h() { panic!(\"boom\") }\n\
                   #[cfg(test)]\nmod tests { fn t(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r3", "r3", "r3"]);
    }

    #[test]
    fn r3_fires_on_unreachable_todo_unimplemented() {
        let src = "fn f() { unreachable!(\"no\") }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap_or_else(|| unreachable!()) }\n\
                   fn h() { todo!() }\n\
                   fn i() { unimplemented!() }\n\
                   #[cfg(test)]\nmod tests { fn t() { unreachable!() } }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r3", "r3", "r3", "r3"]);
    }

    #[test]
    fn r3_allows_unwrap_or_assert_and_non_macro_unreachable() {
        let src = "fn f(x: Option<u32>) -> u32 { assert!(true); x.unwrap_or(0) }\n\
                   fn g() { let unreachable = 1; let _ = unreachable; }";
        assert!(lint_sim(src).is_empty());
    }

    #[test]
    fn r3_skips_bin_bench_example_classes() {
        let cfg = LintConfig::default_config();
        let src = "fn main() { Some(1).unwrap(); }";
        for class in [FileClass::Bin, FileClass::TestFile, FileClass::Bench, FileClass::Example] {
            let input = FileInput { path: "x.rs", crate_key: "sim", class, src };
            assert!(lint_file(&input, &cfg.rules).is_empty(), "{class:?}");
        }
    }

    #[test]
    fn r4_fires_everywhere_even_tests() {
        let f = lint_sim("#[cfg(test)]\nmod tests { fn f() { unsafe { std::hint::unreachable_unchecked() } } }");
        assert_eq!(rules_of(&f), vec!["r4"]);
    }

    #[test]
    fn r5_fires_on_narrowing_only() {
        let f = lint_sim("fn f(x: u64) -> u32 { x as u32 }");
        assert_eq!(rules_of(&f), vec!["r5"]);
        assert!(lint_sim("fn f(x: u32) -> u64 { x as u64 }").is_empty(), "widening ok");
        assert!(lint_sim("fn f(x: u32) -> usize { x as usize }").is_empty(), "usize ok");
    }

    #[test]
    fn r6_fires_on_f64_sum_turbofish_only() {
        let f = lint_sim("fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }");
        assert_eq!(rules_of(&f), vec!["r6"]);
        // Integer sums are exact — order can't change the result.
        assert!(lint_sim("fn f(xs: &[u64]) -> u64 { xs.iter().sum::<u64>() }").is_empty());
        assert!(lint_sim("fn f(xs: &[u64]) -> u64 { xs.iter().sum() }").is_empty(), "untyped");
        // A free function named `sum` is not the iterator adapter.
        assert!(lint_sim("fn sum(a: f64, b: f64) -> f64 { a + b }").is_empty());
    }

    #[test]
    fn r6_skips_test_code_and_non_sim_crates() {
        let f = lint_sim("#[cfg(test)]\nmod tests { fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() } }");
        assert!(f.is_empty(), "{f:?}");
        let f = lint_core("fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }");
        assert!(f.is_empty(), "core aggregates presentation-layer numbers");
    }

    #[test]
    fn r6_ignores_strings_comments_and_split_lines() {
        assert!(lint_sim("// xs.iter().sum::<f64>()\nfn f() -> &'static str { \".sum::<f64>()\" }").is_empty());
        // The sequence still matches across a line break (lexer hands the
        // rule a token stream, not lines).
        let f = lint_sim("fn f(xs: &[f64]) -> f64 { xs.iter()\n    .sum::<f64>() }");
        assert_eq!(rules_of(&f), vec!["r6"]);
        assert_eq!(f[0].line, 2, "finding anchors to the `sum` token's line");
    }

    #[test]
    fn r6_suppression_works_like_any_other_rule() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() } \
                   // simlint::allow(r6, \"ascending index order is pinned\")";
        assert!(lint_sim(src).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences_same_and_next_line() {
        let trailing = "fn f(x: u64) -> u32 { x as u32 } // simlint::allow(r5, \"bounded\")";
        assert!(lint_sim(trailing).is_empty());
        let own_line = "// simlint::allow(r5, \"bounded\")\nfn f(x: u64) -> u32 { x as u32 }";
        assert!(lint_sim(own_line).is_empty());
    }

    #[test]
    fn suppression_does_not_leak_to_other_lines_or_rules() {
        let src = "// simlint::allow(r5, \"bounded\")\nfn f(x: u64) -> u32 { x as u32 }\n\
                   fn g(y: u64) -> u32 { y as u32 }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r5"]);
        let wrong_rule = "fn f(x: u64) -> u32 { x as u32 } // simlint::allow(r3, \"nope\")";
        assert_eq!(rules_of(&lint_sim(wrong_rule)), vec!["r5"]);
    }

    #[test]
    fn suppression_without_reason_is_a_finding_and_does_not_suppress() {
        let src = "fn f(x: u64) -> u32 { x as u32 } // simlint::allow(r5)";
        let f = lint_sim(src);
        assert_eq!(rules_of(&f), vec!["r5", "suppression"]);
    }

    #[test]
    fn suppression_with_unknown_rule_is_a_finding() {
        let f = lint_sim("// simlint::allow(r9, \"what\")\nfn f() {}");
        assert_eq!(rules_of(&f), vec!["suppression"]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r3"]);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r3"]);
    }

    #[test]
    fn test_fn_attribute_marks_only_its_body() {
        let src = "#[test]\nfn t() { Some(1).unwrap(); }\n\
                   fn lib(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_sim(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn banned_names_in_strings_and_comments_do_not_fire() {
        let src = "// HashMap unwrap() panic! Instant unsafe as u32\n\
                   fn f() -> &'static str { \"HashMap::new().unwrap() as u32 unsafe\" }";
        assert!(lint_sim(src).is_empty());
    }

    #[test]
    fn findings_are_sorted_and_deduped() {
        let src = "use std::collections::{HashMap, HashSet};\nfn f() { let t = Instant::now(); }";
        let f = lint_sim(src);
        assert_eq!(rules_of(&f), vec!["r1", "r1", "r2"]);
        assert!(f.windows(2).all(|w| w[0] <= w[1]));
    }
}
