//! The determinism & robustness rules (r1–r9) and the per-file engine.
//!
//! Rules operate on the lexed token stream (r1–r6, r9) and on the parsed
//! item/symbol/use graph (r7, r8), so tokens inside strings and comments
//! can never fire. Each rule is deny-by-default and can be suppressed
//! inline with a *justified* allow:
//!
//! ```text
//! // simlint::allow(r3, "constructor contract: bad config is a caller bug")
//! ```
//!
//! A trailing suppression applies to its own line; a suppression on a line
//! of its own applies to the next line. The suppression system is itself
//! audited: **r8** flags a directive whose removal would produce no
//! finding (computed by diffing the pre-suppression hit set against each
//! directive's target) and, with `require_reason` (the default), a
//! directive with no justification string. r8 findings are not
//! suppressible — a stale allow is deleted, a bare one gets its reason.
//!
//! The engine is two-layered so cross-file rules compose with the
//! file-local ones: [`analyze_file`] produces *raw* (pre-suppression)
//! hits plus the parsed suppression directives, the driver merges in
//! workspace-level r7 hits, and [`finalize`] applies suppressions,
//! computes staleness, and emits the final [`Finding`] list. The
//! single-file [`lint_file`] entry point runs the same pipeline with a
//! file-local symbol table.

use crate::config::{FileClass, RuleCfg};
use crate::lexer::{lex, Tok, TokKind};
use crate::parse::{parse_file, ParsedFile};
use crate::symbols::{build_symbols, FileSyms, SymbolTable};
use crate::usage::collect_reads;
use std::collections::BTreeSet;

/// Stable rule identifiers.
pub const RULE_IDS: [&str; 9] = ["r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
    /// Rule id (`r1`…`r9`, or `suppression` for a malformed allow).
    pub rule: String,
    /// Human message.
    pub message: String,
    /// Half-open byte span `[start, end)` of the offending token.
    pub span: (u32, u32),
}

impl Finding {
    /// `file:line:col: rule: message` — the human diagnostic format.
    pub fn render(&self) -> String {
        format!("{}:{}:{}: {}: {}", self.path, self.line, self.col, self.rule, self.message)
    }
}

/// Everything the engine needs to know about one source file.
#[derive(Debug, Clone)]
pub struct FileInput<'a> {
    /// Workspace-relative path (diagnostics).
    pub path: &'a str,
    /// Directory name of the owning crate (`sim`, `disk`, `readopt`, …).
    pub crate_key: &'a str,
    /// Target class (library, binary, test, bench, example).
    pub class: FileClass,
    /// File contents.
    pub src: &'a str,
}

/// One pre-suppression rule hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawHit {
    /// Rule id.
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Byte span of the offending token.
    pub span: (u32, u32),
    /// Human message.
    pub message: String,
}

/// A parsed `simlint::allow` directive.
#[derive(Debug, Clone)]
pub struct SuppressionInfo {
    /// The rule named by the directive (empty when unparsable).
    pub rule: String,
    /// Whether a non-empty quoted reason was given.
    pub has_reason: bool,
    /// The line the directive applies to.
    pub target_line: u32,
    /// The line the comment itself is on.
    pub comment_line: u32,
    /// 1-based column of the comment token.
    pub col: u32,
    /// Byte span of the comment token.
    pub span: (u32, u32),
    /// Whether the comment sits inside a test region.
    pub in_test: bool,
    /// Parse problem, if any (unknown rule, bad syntax).
    pub problem: Option<String>,
}

/// The per-file analysis result: raw hits from the file-local rules plus
/// the suppression directives. The driver may push additional
/// workspace-level hits (r7) into `raw` before [`finalize`].
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Pre-suppression hits, test-region filtering already applied.
    pub raw: Vec<RawHit>,
    /// All `simlint::allow` directives in the file.
    pub suppressions: Vec<SuppressionInfo>,
}

/// Narrowing `as` targets R5 rejects in unit/time arithmetic.
const NARROWING_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Containers/RNG R1 rejects in simulation crates.
const R1_BANNED: [(&str, &str); 3] = [
    ("HashMap", "use BTreeMap: HashMap iteration order is nondeterministic"),
    ("HashSet", "use BTreeSet: HashSet iteration order is nondeterministic"),
    ("thread_rng", "use the seeded SimRng (crates/sim/src/rng.rs), never an OS-seeded rng"),
];

/// Wall-clock types R2 rejects inside simulation logic.
const R2_BANNED: [&str; 3] = ["SystemTime", "Instant", "UNIX_EPOCH"];

fn rule_cfg<'a>(rules: &'a [(String, RuleCfg)], id: &str) -> Option<&'a RuleCfg> {
    rules.iter().find(|(rid, _)| rid == id).map(|(_, c)| c)
}

/// Runs the file-local rules (r1–r6, r9) over one lexed+parsed file,
/// returning pre-suppression hits and the suppression directives.
pub fn analyze_file(
    input: &FileInput<'_>,
    toks: &[Tok],
    parsed: &ParsedFile,
    rules: &[(String, RuleCfg)],
    symbols: &SymbolTable,
) -> FileAnalysis {
    let in_test = test_regions(toks);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let suppressions = collect_suppressions(toks, &in_test);

    let mut raw: Vec<RawHit> = Vec::new();
    for (rule_id, cfg) in rules {
        if !cfg.enabled
            || !cfg.applies_to_crate(input.crate_key)
            || !cfg.applies_to_class(input.class)
        {
            continue;
        }
        let hits = match rule_id.as_str() {
            "r1" => rule_r1(toks, &code),
            "r2" => rule_r2(toks, &code),
            "r3" => rule_r3(toks, &code),
            "r4" => rule_r4(toks, &code),
            "r5" => rule_r5(toks, &code),
            "r6" => rule_r6(toks, &code),
            "r9" => rule_r9(toks, &code, parsed, &symbols.float_fields),
            _ => Vec::new(),
        };
        for (tok_idx, message) in hits {
            if cfg.skip_test_code && in_test[tok_idx] {
                continue;
            }
            let t = &toks[tok_idx];
            let mut span = t.span();
            if rule_id == "r9" {
                // `==`/`!=` lex as two single-char punct tokens; widen the
                // span so it covers the whole operator, not just its head.
                if let Some(tail) = toks.get(tok_idx + 1) {
                    if tail.is_punct('=') {
                        span.1 = tail.span().1;
                    }
                }
            }
            raw.push(RawHit {
                rule: rule_id.clone(),
                line: t.line,
                col: t.col,
                span,
                message,
            });
        }
    }
    FileAnalysis { raw, suppressions }
}

/// Computes r7 dead-config hits from the workspace symbol table and the
/// union of all read sites, keyed by declaring file path.
pub fn dead_config_hits(
    symbols: &SymbolTable,
    reads: &BTreeSet<String>,
    rules: &[(String, RuleCfg)],
) -> Vec<(String, RawHit)> {
    let Some(cfg) = rule_cfg(rules, "r7") else { return Vec::new() };
    if !cfg.enabled {
        return Vec::new();
    }
    symbols
        .config_fields
        .iter()
        .filter(|f| f.deserialize && cfg.applies_to_crate(&f.crate_key) && !reads.contains(&f.field))
        .map(|f| {
            (
                f.path.clone(),
                RawHit {
                    rule: "r7".into(),
                    line: f.line,
                    col: f.col,
                    span: f.span,
                    message: format!(
                        "config field `{}::{}` is Deserialize-visible but has no non-serde, \
                         non-test read anywhere in the workspace; wire it into its driver or \
                         delete it",
                        f.type_name, f.field
                    ),
                },
            )
        })
        .collect()
}

/// Applies suppressions to the raw hit set, audits the directives (r8),
/// and emits the final findings for one file.
pub fn finalize(
    path: &str,
    crate_key: &str,
    class: FileClass,
    analysis: &FileAnalysis,
    rules: &[(String, RuleCfg)],
) -> Vec<Finding> {
    let mut findings: Vec<Finding> = Vec::new();
    let r8 = rule_cfg(rules, "r8");
    let r8_active = r8.is_some_and(|c| {
        c.enabled && c.applies_to_crate(crate_key) && c.applies_to_class(class)
    });
    let require_reason = r8.is_none_or(|c| c.require_reason);

    // Malformed directives are findings regardless of rule scoping: a
    // typo'd allow silently suppresses nothing, which is worse than noise.
    for s in &analysis.suppressions {
        if let Some(problem) = &s.problem {
            findings.push(Finding {
                path: path.to_string(),
                line: s.comment_line,
                col: s.col,
                rule: "suppression".into(),
                message: problem.clone(),
                span: s.span,
            });
        }
    }

    // A directive suppresses a hit when it is well-formed, justified (or
    // justification is waived), names the hit's rule, and targets its
    // line. r8 itself is never suppressible.
    let suppresses = |s: &SuppressionInfo, rule: &str, line: u32| -> bool {
        s.problem.is_none()
            && (s.has_reason || !require_reason)
            && s.rule != "r8"
            && s.rule == rule
            && s.target_line == line
    };

    for hit in &analysis.raw {
        if analysis.suppressions.iter().any(|s| suppresses(s, &hit.rule, hit.line)) {
            continue;
        }
        findings.push(Finding {
            path: path.to_string(),
            line: hit.line,
            col: hit.col,
            rule: hit.rule.clone(),
            message: hit.message.clone(),
            span: hit.span,
        });
    }

    // r8: the suppression audit.
    if r8_active {
        let skip_test = r8.is_some_and(|c| c.skip_test_code);
        for s in &analysis.suppressions {
            if s.problem.is_some() || (skip_test && s.in_test) {
                continue;
            }
            let mut push = |message: String| {
                findings.push(Finding {
                    path: path.to_string(),
                    line: s.comment_line,
                    col: s.col,
                    rule: "r8".into(),
                    message,
                    span: s.span,
                });
            };
            if s.rule == "r8" {
                push(
                    "simlint::allow(r8) has no effect: r8 findings are not suppressible — \
                     delete the stale directive or justify the bare one instead"
                        .into(),
                );
                continue;
            }
            let live = analysis
                .raw
                .iter()
                .any(|h| h.rule == s.rule && h.line == s.target_line);
            if !live {
                push(format!(
                    "stale simlint::allow({}): removing it produces no {} finding on line {} — \
                     delete the directive",
                    s.rule, s.rule, s.target_line
                ));
            } else if !s.has_reason && require_reason {
                push(format!(
                    "simlint::allow({}) needs a reason: simlint::allow({}, \"why\")",
                    s.rule, s.rule
                ));
            }
        }
    }

    findings.sort();
    findings.dedup();
    findings
}

/// Lints one file in isolation under the given per-rule configs, using a
/// file-local symbol table (r7's "anywhere in the workspace" shrinks to
/// "anywhere in this file"). The workspace driver uses the layered
/// [`analyze_file`]/[`finalize`] pipeline instead.
pub fn lint_file(input: &FileInput<'_>, rules: &[(String, RuleCfg)]) -> Vec<Finding> {
    let toks = lex(input.src);
    let parsed = parse_file(&toks);
    let symbols = build_symbols(&[FileSyms {
        path: input.path,
        crate_key: input.crate_key,
        class: input.class,
        parsed: &parsed,
    }]);
    let reads = collect_reads(&toks, &parsed, input.class);
    let mut analysis = analyze_file(input, &toks, &parsed, rules, &symbols);
    for (hit_path, hit) in dead_config_hits(&symbols, &reads, rules) {
        debug_assert_eq!(hit_path, input.path);
        analysis.raw.push(hit);
    }
    finalize(input.path, input.crate_key, input.class, &analysis, rules)
}

// ---------------------------------------------------------------------------
// Individual rules. Each returns (token index, message) pairs.
// ---------------------------------------------------------------------------

/// R1: nondeterministic containers / OS-seeded randomness.
fn rule_r1(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokKind::Ident {
            continue;
        }
        for (banned, advice) in R1_BANNED {
            if t.text == banned {
                out.push((ti, format!("nondeterministic `{banned}` in a simulation crate; {advice}")));
            }
        }
        // The path `rand::random` (OS entropy) — the method `.random()` on a
        // seeded rng is fine and does not match.
        if t.text == "random"
            && ci >= 3
            && toks[code[ci - 1]].is_punct(':')
            && toks[code[ci - 2]].is_punct(':')
            && toks[code[ci - 3]].is_ident("rand")
        {
            out.push((ti, "`rand::random` draws OS entropy; use the seeded SimRng".into()));
        }
    }
    out
}

/// R2: wall-clock types inside simulation logic.
fn rule_r2(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for &ti in code {
        let t = &toks[ti];
        if t.kind == TokKind::Ident && R2_BANNED.contains(&t.text.as_str()) {
            out.push((
                ti,
                format!(
                    "wall-clock `{}` in simulation logic; simulated time lives in \
                     crates/disk/src/time.rs (profiling belongs in the crates/core runner layer)",
                    t.text
                ),
            ));
        }
    }
    out
}

/// R3: `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!` /
/// `unreachable!` in library code. `assert!`-family macros are allowed —
/// they assert invariants rather than skip error handling. `unreachable!`
/// is denied because "can't happen" branches belong on the error path
/// (`AllocError::CorruptState`-style) or behind a justified suppression:
/// an unjustified one is a latent panic in the simulator's hot loop.
fn rule_r3(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = ci > 0 && toks[code[ci - 1]].is_punct('.');
        let next_paren = ci + 1 < code.len() && toks[code[ci + 1]].is_punct('(');
        let next_bang = ci + 1 < code.len() && toks[code[ci + 1]].is_punct('!');
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => out.push((
                ti,
                format!(".{}() in library code; propagate with `?` via the crate error type", t.text),
            )),
            "panic" if next_bang => out
                .push((ti, "panic! in library code; return an error (or assert an invariant)".into())),
            "todo" | "unimplemented" if next_bang => {
                out.push((ti, format!("{}! left in library code", t.text)));
            }
            "unreachable" if next_bang => out.push((
                ti,
                "unreachable! in library code; return an error (e.g. a CorruptState variant) \
                 or justify with a suppression"
                    .into(),
            )),
            _ => {}
        }
    }
    out
}

/// R4: `unsafe` anywhere outside the vendored crates.
fn rule_r4(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    code.iter()
        .filter(|&&ti| toks[ti].is_ident("unsafe"))
        .map(|&ti| (ti, "unsafe block/impl outside crates/vendor".to_string()))
        .collect()
}

/// R5: narrowing `as` casts (`u64 as u32`, `f64 as f32`, …) on unit/time
/// arithmetic crates. Use `u32::try_from(..)` (or restructure so the value
/// is provably in range and assert it).
fn rule_r5(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        if toks[ti].is_ident("as") && ci + 1 < code.len() {
            let target = &toks[code[ci + 1]];
            if target.kind == TokKind::Ident && NARROWING_TARGETS.contains(&target.text.as_str()) {
                out.push((
                    ti,
                    format!(
                        "narrowing `as {}` cast on unit/time arithmetic; use `{}::try_from` or \
                         keep the wide type",
                        target.text, target.text
                    ),
                ));
            }
        }
    }
    out
}

/// R6: `.sum::<f64>()` in simulation crates. Float addition is not
/// associative, so a sum whose accumulation order is left to the iterator
/// is a determinism hazard the moment the source order changes (parallel
/// merges, set reorderings). Accumulate with an explicit loop in a pinned
/// order — or justify the pinned order with an allow.
fn rule_r6(toks: &[Tok], code: &[usize]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        // The token sequence `. sum : : < f64 >`.
        if t.is_ident("sum")
            && ci >= 1
            && toks[code[ci - 1]].is_punct('.')
            && ci + 4 < code.len()
            && toks[code[ci + 1]].is_punct(':')
            && toks[code[ci + 2]].is_punct(':')
            && toks[code[ci + 3]].is_punct('<')
            && toks[code[ci + 4]].is_ident("f64")
        {
            out.push((
                ti,
                "`.sum::<f64>()` leaves float accumulation order to the iterator; \
                 accumulate with an explicit loop in a pinned order"
                    .into(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R9: exact float equality
// ---------------------------------------------------------------------------

/// Punctuation that ends an operand window (scanning away from the
/// comparison operator at bracket depth 0).
fn ends_operand(t: &Tok) -> bool {
    [';', ',', '{', '}', '&', '|', '=', '<', '>', '!', '?'].iter().any(|&c| t.is_punct(c))
}

/// Integer literal suffixes — a trailing one makes the literal an integer
/// no matter what the body looks like (and `usize` contains an `e` that
/// must not read as an exponent).
const INT_SUFFIXES: [&str; 12] =
    ["usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8"];

/// Is this numeric literal float-typed? (`1.0`, `1e3`, `2f64` — but not
/// `0xE3`, `10u64`, `0usize`, or a bare integer.)
fn float_shaped_num(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") || text.starts_with("0b") || text.starts_with("0o")
    {
        return false;
    }
    if text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    if INT_SUFFIXES.iter().any(|s| text.ends_with(s)) {
        return false;
    }
    text.contains('.') || text.contains('e') || text.contains('E')
}

/// R9: `==` / `!=` where either operand is float-shaped — a float literal,
/// an `f64`/`f32` path or cast, a field whose declared type is `f64`/`f32`
/// (workspace symbol table), or a local/param the enclosing function types
/// as float. Exact float comparison is order-fragile: two mathematically
/// equal sums can differ in the last ulp depending on accumulation order,
/// which is precisely the hazard a bit-identical simulator must not build
/// on. Compare against an explicit tolerance, or justify the exactness
/// (sentinel values, bit-pattern round-trips) with an allow.
fn rule_r9(
    toks: &[Tok],
    code: &[usize],
    parsed: &ParsedFile,
    float_fields: &BTreeSet<String>,
) -> Vec<(usize, String)> {
    // Per-function float environments: params and `let` locals with an
    // f64/f32 annotation or a float-literal initializer.
    let envs: Vec<((usize, usize), BTreeSet<String>)> = parsed
        .fns
        .iter()
        .filter_map(|f| f.body.map(|body| (body, float_env(toks, code, f, body))))
        .collect();
    let env_of = |ti: usize| -> Option<&BTreeSet<String>> {
        envs.iter()
            .filter(|((s, e), _)| ti >= *s && ti < *e)
            .min_by_key(|((s, e), _)| e - s)
            .map(|(_, env)| env)
    };

    let mut out = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        // `==`: two adjacent `=` not preceded by an operator fragment;
        // `!=`: `!` directly followed by `=`.
        let (is_cmp, rhs_ci) = if t.is_punct('=')
            && ci + 1 < code.len()
            && toks[code[ci + 1]].is_punct('=')
            && !(ci > 0 && is_op_fragment(&toks[code[ci - 1]]))
        {
            (true, ci + 2)
        } else if t.is_punct('!') && ci + 1 < code.len() && toks[code[ci + 1]].is_punct('=') {
            (true, ci + 2)
        } else {
            (false, 0)
        };
        if !is_cmp {
            continue;
        }
        let env = env_of(ti);
        let lhs_float = ci > 0 && operand_is_float(toks, code, ci - 1, false, float_fields, env);
        let rhs_float =
            rhs_ci < code.len() && operand_is_float(toks, code, rhs_ci, true, float_fields, env);
        if lhs_float || rhs_float {
            let op = if t.is_punct('=') { "==" } else { "!=" };
            out.push((
                ti,
                format!(
                    "exact float `{op}` is order-fragile (equal sums can differ in the last \
                     ulp); compare against an explicit tolerance or justify the exactness"
                ),
            ));
        }
    }
    out
}

/// Could the previous token be the first half of a compound operator
/// (`<=`, `>=`, `+=`, `==`, …)? If so the `=` we're looking at is its tail.
fn is_op_fragment(t: &Tok) -> bool {
    ['=', '<', '>', '!', '+', '-', '*', '/', '%', '&', '|', '^'].iter().any(|&c| t.is_punct(c))
}

/// Walks one operand window (up to 8 code tokens, stopping at an
/// operand-ending punct at depth 0) and reports whether anything in it is
/// float-shaped. `forward` selects scan direction from `start` (a code
/// index).
fn operand_is_float(
    toks: &[Tok],
    code: &[usize],
    start: usize,
    forward: bool,
    float_fields: &BTreeSet<String>,
    env: Option<&BTreeSet<String>>,
) -> bool {
    let mut depth = 0i32;
    let mut ci = start as isize;
    for _ in 0..8 {
        if ci < 0 || ci as usize >= code.len() {
            return false;
        }
        let cu = ci as usize;
        let t = &toks[code[cu]];
        // Depth bookkeeping relative to scan direction: moving forward,
        // `(` opens; moving backward, `)` opens.
        let (open, close) = if forward { ('(', ')') } else { (')', '(') };
        if t.is_punct(open) || t.is_punct(if forward { '[' } else { ']' }) {
            depth += 1;
        } else if t.is_punct(close) || t.is_punct(if forward { ']' } else { '[' }) {
            if depth == 0 {
                return false;
            }
            depth -= 1;
        } else if depth == 0 && ends_operand(t) {
            return false;
        } else if depth == 0 {
            if t.kind == TokKind::Num && float_shaped_num(&t.text) {
                return true;
            }
            if t.is_ident("f64") || t.is_ident("f32") {
                return true;
            }
            if t.kind == TokKind::Ident {
                let prev_dot = cu > 0 && toks[code[cu - 1]].is_punct('.');
                let next_paren = cu + 1 < code.len() && toks[code[cu + 1]].is_punct('(');
                if prev_dot && !next_paren && float_fields.contains(&t.text) {
                    return true;
                }
                if !prev_dot && !next_paren && env.is_some_and(|e| e.contains(&t.text)) {
                    return true;
                }
            }
        }
        ci += if forward { 1 } else { -1 };
    }
    false
}

/// The float-typed names visible in one function body: float params plus
/// `let` locals with an `f64`/`f32` annotation or a float-literal
/// initializer. Scoping is function-wide (no shadow tracking) — an
/// imprecision that can only widen r9, the conservative direction.
fn float_env(
    toks: &[Tok],
    code: &[usize],
    f: &crate::parse::FnDef,
    body: (usize, usize),
) -> BTreeSet<String> {
    let mut env: BTreeSet<String> = f
        .params
        .iter()
        .filter(|p| p.ty.split_whitespace().any(|w| w == "f64" || w == "f32"))
        .map(|p| p.name.clone())
        .collect();
    let body_code: Vec<usize> = code.iter().copied().filter(|&ti| ti >= body.0 && ti < body.1).collect();
    let mut ci = 0usize;
    while ci < body_code.len() {
        if !toks[body_code[ci]].is_ident("let") {
            ci += 1;
            continue;
        }
        let mut cj = ci + 1;
        if cj < body_code.len() && toks[body_code[cj]].is_ident("mut") {
            cj += 1;
        }
        let Some(&name_ti) = body_code.get(cj) else { break };
        let name_tok = &toks[name_ti];
        if name_tok.kind != TokKind::Ident {
            ci = cj + 1;
            continue;
        }
        let mut is_float = false;
        if body_code.get(cj + 1).is_some_and(|&ti| toks[ti].is_punct(':')) {
            // `let name: Ty … = / ;` — float when the annotation mentions
            // f64/f32 at any position (covers `&f64`, `Option<f32>` is
            // arguable but flagged-on-use only when compared directly).
            let mut ck = cj + 2;
            while ck < body_code.len() {
                let t = &toks[body_code[ck]];
                if t.is_punct('=') || t.is_punct(';') {
                    break;
                }
                if t.is_ident("f64") || t.is_ident("f32") {
                    is_float = true;
                }
                ck += 1;
            }
        } else if body_code.get(cj + 1).is_some_and(|&ti| toks[ti].is_punct('=')) {
            // `let name = <literal>` — float when the initializer starts
            // with a float-shaped number (optionally negated).
            let mut ck = cj + 2;
            if body_code.get(ck).is_some_and(|&ti| toks[ti].is_punct('-')) {
                ck += 1;
            }
            if body_code
                .get(ck)
                .is_some_and(|&ti| toks[ti].kind == TokKind::Num && float_shaped_num(&toks[ti].text))
            {
                is_float = true;
            }
        }
        if is_float {
            env.insert(name_tok.text.clone());
        }
        ci = cj + 1;
    }
    env
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Marks every token inside a `#[cfg(test)]` / `#[test]` item body (and the
/// attribute itself). Returns one flag per token.
///
/// Limitations (documented): `#[cfg(not(test))]` is recognized and *not*
/// treated as a test region; more exotic cfg expressions that both contain
/// `test` and a `not` are conservatively treated as non-test.
pub fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut ci = 0;
    while ci < code.len() {
        if !(toks[code[ci]].is_punct('#')
            && ci + 1 < code.len()
            && toks[code[ci + 1]].is_punct('['))
        {
            ci += 1;
            continue;
        }
        // Collect the attribute token span `#[ … ]` (brackets nest).
        let attr_start = ci;
        let mut depth = 0usize;
        let mut cj = ci + 1;
        while cj < code.len() {
            if toks[code[cj]].is_punct('[') {
                depth += 1;
            } else if toks[code[cj]].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            cj += 1;
        }
        let attr_end = cj; // index of the closing ']'
        let attr_idents: Vec<&str> = code[attr_start..=attr_end.min(code.len() - 1)]
            .iter()
            .filter(|&&ti| toks[ti].kind == TokKind::Ident)
            .map(|&ti| toks[ti].text.as_str())
            .collect();
        let is_test_attr = match attr_idents.first() {
            Some(&"test") => true,
            Some(&"cfg") | Some(&"cfg_attr") => {
                attr_idents.contains(&"test") && !attr_idents.contains(&"not")
            }
            _ => false,
        };
        if !is_test_attr {
            ci = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut ck = attr_end + 1;
        while ck + 1 < code.len() && toks[code[ck]].is_punct('#') && toks[code[ck + 1]].is_punct('[')
        {
            let mut d = 0usize;
            let mut cm = ck + 1;
            while cm < code.len() {
                if toks[code[cm]].is_punct('[') {
                    d += 1;
                } else if toks[code[cm]].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                cm += 1;
            }
            ck = cm + 1;
        }
        // Find the item body `{ … }` — or a `;` first (e.g. `#[cfg(test)]
        // use foo;`), in which case the item has no body to mark.
        let mut body_open = None;
        let mut cm = ck;
        while cm < code.len() {
            if toks[code[cm]].is_punct('{') {
                body_open = Some(cm);
                break;
            }
            if toks[code[cm]].is_punct(';') {
                break;
            }
            cm += 1;
        }
        let Some(open) = body_open else {
            ci = attr_end + 1;
            continue;
        };
        // Brace-match the body.
        let mut d = 0usize;
        let mut close = open;
        while close < code.len() {
            if toks[code[close]].is_punct('{') {
                d += 1;
            } else if toks[code[close]].is_punct('}') {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            close += 1;
        }
        let close = close.min(code.len() - 1);
        // Mark attribute through body (token-index range over *all* tokens,
        // comments included — suppressions in test code stay usable).
        for flag in flags
            .iter_mut()
            .take(code[close] + 1)
            .skip(code[attr_start])
        {
            *flag = true;
        }
        ci = close + 1;
    }
    flags
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Extracts `simlint::allow(rule, "reason")` directives from line comments.
fn collect_suppressions(toks: &[Tok], in_test: &[bool]) -> Vec<SuppressionInfo> {
    let mut out = Vec::new();
    let mut last_code_line = 0u32;
    for (ti, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            last_code_line = t.line;
            continue;
        }
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments are documentation (they may *describe* the
        // directive, as this crate's own docs do), never directives.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(pos) = t.text.find("simlint::allow") else { continue };
        let rest = &t.text[pos + "simlint::allow".len()..];
        let target_line = if t.line == last_code_line { t.line } else { t.line + 1 };
        let base = SuppressionInfo {
            rule: String::new(),
            has_reason: false,
            target_line,
            comment_line: t.line,
            col: t.col,
            span: t.span(),
            in_test: in_test[ti],
            problem: None,
        };
        match parse_allow_args(rest) {
            Ok((rule, has_reason)) => {
                let problem = if RULE_IDS.contains(&rule.as_str()) {
                    None
                } else {
                    Some(format!("simlint::allow names unknown rule `{rule}` (known: r1..r9)"))
                };
                out.push(SuppressionInfo { rule, has_reason, problem, ..base });
            }
            Err(msg) => out.push(SuppressionInfo { problem: Some(msg), ..base }),
        }
    }
    out
}

/// Parses `(rule)` or `(rule, "reason")` from the text following
/// `simlint::allow`. Returns (rule, has_nonempty_reason).
fn parse_allow_args(rest: &str) -> Result<(String, bool), String> {
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err("malformed simlint::allow — expected `(rule, \"reason\")`".into());
    };
    let Some(end) = body.find(')') else {
        return Err("malformed simlint::allow — missing `)`".into());
    };
    let inner = &body[..end];
    let (rule_part, reason_part) = match inner.find(',') {
        Some(c) => (&inner[..c], Some(inner[c + 1..].trim())),
        None => (inner, None),
    };
    let rule = rule_part.trim().to_string();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err("malformed simlint::allow — rule id must be an identifier".into());
    }
    let has_reason = match reason_part {
        Some(r) => r.len() > 2 && r.starts_with('"') && r.ends_with('"'),
        None => false,
    };
    Ok((rule, has_reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;

    fn lint_sim(src: &str) -> Vec<Finding> {
        let cfg = LintConfig::default_config();
        let input =
            FileInput { path: "crates/sim/src/x.rs", crate_key: "sim", class: FileClass::Lib, src };
        lint_file(&input, &cfg.rules)
    }

    fn lint_core(src: &str) -> Vec<Finding> {
        let cfg = LintConfig::default_config();
        let input =
            FileInput { path: "crates/core/src/x.rs", crate_key: "core", class: FileClass::Lib, src };
        lint_file(&input, &cfg.rules)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn r1_fires_on_hashmap_and_thread_rng() {
        let f = lint_sim("use std::collections::HashMap;\nfn f() { let r = thread_rng(); }");
        assert_eq!(rules_of(&f), vec!["r1", "r1"]);
    }

    #[test]
    fn r1_fires_on_rand_random_path_but_not_seeded_method() {
        let f = lint_sim("fn f(rng: &mut SimRng) { let x: u64 = rng.random(); }");
        assert!(f.is_empty(), "{f:?}");
        let f = lint_sim("fn f() { let x: u64 = rand::random(); }");
        assert_eq!(rules_of(&f), vec!["r1"]);
    }

    #[test]
    fn r1_fires_even_in_test_code() {
        let f = lint_sim("#[cfg(test)]\nmod tests { use std::collections::HashMap; }");
        assert_eq!(rules_of(&f), vec!["r1"]);
    }

    #[test]
    fn r2_fires_in_sim_but_not_core() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r2", "r2"]);
        assert!(lint_core(src).is_empty(), "core is the profiling/runner layer");
    }

    #[test]
    fn r3_fires_on_unwrap_expect_panic_only_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"y\") }\n\
                   fn h() { panic!(\"boom\") }\n\
                   #[cfg(test)]\nmod tests { fn t(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r3", "r3", "r3"]);
    }

    #[test]
    fn r3_fires_on_unreachable_todo_unimplemented() {
        let src = "fn f() { unreachable!(\"no\") }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap_or_else(|| unreachable!()) }\n\
                   fn h() { todo!() }\n\
                   fn i() { unimplemented!() }\n\
                   #[cfg(test)]\nmod tests { fn t() { unreachable!() } }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r3", "r3", "r3", "r3"]);
    }

    #[test]
    fn r3_allows_unwrap_or_assert_and_non_macro_unreachable() {
        let src = "fn f(x: Option<u32>) -> u32 { assert!(true); x.unwrap_or(0) }\n\
                   fn g() { let unreachable = 1; let _ = unreachable; }";
        assert!(lint_sim(src).is_empty());
    }

    #[test]
    fn r3_skips_bin_bench_example_classes() {
        let cfg = LintConfig::default_config();
        let src = "fn main() { Some(1).unwrap(); }";
        for class in [FileClass::Bin, FileClass::TestFile, FileClass::Bench, FileClass::Example] {
            let input = FileInput { path: "x.rs", crate_key: "sim", class, src };
            assert!(lint_file(&input, &cfg.rules).is_empty(), "{class:?}");
        }
    }

    #[test]
    fn r4_fires_everywhere_even_tests() {
        let f = lint_sim("#[cfg(test)]\nmod tests { fn f() { unsafe { std::hint::unreachable_unchecked() } } }");
        assert_eq!(rules_of(&f), vec!["r4"]);
    }

    #[test]
    fn r5_fires_on_narrowing_only() {
        let f = lint_sim("fn f(x: u64) -> u32 { x as u32 }");
        assert_eq!(rules_of(&f), vec!["r5"]);
        assert!(lint_sim("fn f(x: u32) -> u64 { x as u64 }").is_empty(), "widening ok");
        assert!(lint_sim("fn f(x: u32) -> usize { x as usize }").is_empty(), "usize ok");
    }

    #[test]
    fn r6_fires_on_f64_sum_turbofish_only() {
        let f = lint_sim("fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }");
        assert_eq!(rules_of(&f), vec!["r6"]);
        // Integer sums are exact — order can't change the result.
        assert!(lint_sim("fn f(xs: &[u64]) -> u64 { xs.iter().sum::<u64>() }").is_empty());
        assert!(lint_sim("fn f(xs: &[u64]) -> u64 { xs.iter().sum() }").is_empty(), "untyped");
        // A free function named `sum` is not the iterator adapter.
        assert!(lint_sim("fn sum(a: f64, b: f64) -> f64 { a + b }").is_empty());
    }

    #[test]
    fn r6_skips_test_code_and_non_sim_crates() {
        let f = lint_sim("#[cfg(test)]\nmod tests { fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() } }");
        assert!(f.is_empty(), "{f:?}");
        let f = lint_core("fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }");
        assert!(f.is_empty(), "core aggregates presentation-layer numbers");
    }

    #[test]
    fn r6_ignores_strings_comments_and_split_lines() {
        assert!(lint_sim("// xs.iter().sum::<f64>()\nfn f() -> &'static str { \".sum::<f64>()\" }").is_empty());
        // The sequence still matches across a line break (lexer hands the
        // rule a token stream, not lines).
        let f = lint_sim("fn f(xs: &[f64]) -> f64 { xs.iter()\n    .sum::<f64>() }");
        assert_eq!(rules_of(&f), vec!["r6"]);
        assert_eq!(f[0].line, 2, "finding anchors to the `sum` token's line");
    }

    #[test]
    fn r6_suppression_works_like_any_other_rule() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() } \
                   // simlint::allow(r6, \"ascending index order is pinned\")";
        assert!(lint_sim(src).is_empty());
    }

    // --- r7: dead config ---------------------------------------------------

    #[test]
    fn r7_fires_on_unread_deserialize_config_field() {
        let src = "#[derive(Serialize, Deserialize)]\n\
                   pub struct XConfig { pub live: u64, pub dead: u64 }\n\
                   pub fn run(c: &XConfig) -> u64 { c.live }";
        let f = lint_sim(src);
        assert_eq!(rules_of(&f), vec!["r7"]);
        assert!(f[0].message.contains("XConfig::dead"), "{}", f[0].message);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn r7_requires_deserialize_and_config_suffix() {
        // No Deserialize derive: serde can't see the field, not r7's business.
        let plain = "#[derive(Debug, Clone)]\nstruct YConfig { dead: u64 }";
        assert!(lint_sim(plain).is_empty());
        // Not a *Config struct: any dead-field analysis is out of scope.
        let other = "#[derive(Deserialize)]\nstruct State { dead: u64 }";
        assert!(lint_sim(other).is_empty());
    }

    #[test]
    fn r7_discounts_serde_impls_and_tests() {
        let src = "#[derive(Deserialize)]\npub struct ZConfig { pub knob: u64 }\n\
                   impl Serialize for ZConfig { fn ser(&self) -> u64 { self.knob } }\n\
                   #[cfg(test)]\nmod t { fn f(c: &ZConfig) -> u64 { c.knob } }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r7"], "serde/test reads don't keep it alive");
    }

    #[test]
    fn r7_constructor_literal_is_not_a_read_but_pattern_is() {
        let ctor = "#[derive(Deserialize)]\npub struct CConfig { pub knob: u64 }\n\
                    pub fn mk() -> CConfig { CConfig { knob: 1 } }";
        assert_eq!(rules_of(&lint_sim(ctor)), vec!["r7"], "literal writes don't count");
        let pat = "#[derive(Deserialize)]\npub struct CConfig { pub knob: u64 }\n\
                   pub fn use_it(c: CConfig) -> u64 { let CConfig { knob } = c; knob }";
        assert!(lint_sim(pat).is_empty(), "destructuring reads count");
    }

    #[test]
    fn r7_respects_crate_scope_and_suppression() {
        let src = "#[derive(Deserialize)]\nstruct QConfig { dead: u64 }";
        assert!(lint_core(src).is_empty(), "core is outside r7's crate scope");
        let suppressed = "#[derive(Deserialize)]\nstruct QConfig {\n\
                          // simlint::allow(r7, \"reserved for the phase-2 driver\")\n\
                          dead: u64,\n}";
        assert!(lint_sim(suppressed).is_empty(), "a justified allow suppresses r7");
    }

    // --- r8: suppression audit ---------------------------------------------

    #[test]
    fn r8_flags_stale_allow_and_wrong_rule_allow() {
        // Nothing on the target line fires r5 — the directive is dead.
        let f = lint_sim("// simlint::allow(r5, \"bounded\")\nfn f(x: u32) -> u64 { x as u64 }");
        assert_eq!(rules_of(&f), vec!["r8"]);
        assert!(f[0].message.contains("stale"), "{}", f[0].message);
        // The line fires r5, but the allow names r3: both live r5 and stale r8.
        let wrong = "fn f(x: u64) -> u32 { x as u32 } // simlint::allow(r3, \"nope\")";
        assert_eq!(rules_of(&lint_sim(wrong)), vec!["r5", "r8"]);
    }

    #[test]
    fn r8_flags_allow_for_out_of_scope_rule() {
        // r5 is not scoped to `core`, so an allow(r5) there suppresses
        // nothing no matter what the line contains.
        let f = lint_core("fn f(x: u64) -> u32 { x as u32 } // simlint::allow(r5, \"bounded\")");
        assert_eq!(rules_of(&f), vec!["r8"]);
    }

    #[test]
    fn r8_requires_a_reason_and_unreasoned_allows_do_not_suppress() {
        let src = "fn f(x: u64) -> u32 { x as u32 } // simlint::allow(r5)";
        let f = lint_sim(src);
        assert_eq!(rules_of(&f), vec!["r5", "r8"]);
        assert!(f.iter().any(|x| x.message.contains("needs a reason")));
    }

    #[test]
    fn r8_require_reason_false_lets_bare_allows_suppress() {
        let mut cfg = LintConfig::default_config();
        for (id, c) in &mut cfg.rules {
            if id == "r8" {
                c.require_reason = false;
            }
        }
        let input = FileInput {
            path: "crates/sim/src/x.rs",
            crate_key: "sim",
            class: FileClass::Lib,
            src: "fn f(x: u64) -> u32 { x as u32 } // simlint::allow(r5)",
        };
        assert!(lint_file(&input, &cfg.rules).is_empty());
    }

    #[test]
    fn r8_is_not_suppressible() {
        let f = lint_sim("// simlint::allow(r8, \"please\")\nfn f() {}");
        assert_eq!(rules_of(&f), vec!["r8"]);
        assert!(f[0].message.contains("not suppressible"), "{}", f[0].message);
    }

    #[test]
    fn live_justified_allows_are_untouched() {
        let trailing = "fn f(x: u64) -> u32 { x as u32 } // simlint::allow(r5, \"bounded\")";
        assert!(lint_sim(trailing).is_empty());
        let own_line = "// simlint::allow(r5, \"bounded\")\nfn f(x: u64) -> u32 { x as u32 }";
        assert!(lint_sim(own_line).is_empty());
    }

    #[test]
    fn suppression_does_not_leak_to_other_lines() {
        let src = "// simlint::allow(r5, \"bounded\")\nfn f(x: u64) -> u32 { x as u32 }\n\
                   fn g(y: u64) -> u32 { y as u32 }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r5"]);
    }

    #[test]
    fn suppression_with_unknown_rule_is_a_finding() {
        let f = lint_sim("// simlint::allow(r42, \"what\")\nfn f() {}");
        assert_eq!(rules_of(&f), vec!["suppression"]);
    }

    // --- r9: float equality ------------------------------------------------

    #[test]
    fn r9_fires_on_float_literal_comparison() {
        let f = lint_sim("fn f(x: f64) -> bool { x == 0.0 }");
        assert_eq!(rules_of(&f), vec!["r9"]);
        let f = lint_sim("fn f(x: f64) -> bool { x != 1.5e3 }");
        assert_eq!(rules_of(&f), vec!["r9"]);
    }

    #[test]
    fn r9_fires_on_float_params_locals_and_casts() {
        // Both sides are idents; the param type makes them float.
        assert_eq!(rules_of(&lint_sim("fn f(a: f64, b: f64) -> bool { a == b }")), vec!["r9"]);
        let local = "fn f(n: u64) -> bool { let frac = 0.5; frac == compute(n) }";
        assert_eq!(rules_of(&lint_sim(local)), vec!["r9"]);
        assert_eq!(rules_of(&lint_sim("fn f(n: u64, m: u64) -> bool { n as f64 == m as f64 }")), vec!["r9"]);
    }

    #[test]
    fn r9_fires_on_known_float_fields() {
        let src = "struct Stats { mean: f64 }\n\
                   fn f(s: &Stats, t: &Stats) -> bool { s.mean == t.mean }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r9"]);
    }

    #[test]
    fn r9_ignores_integer_and_non_float_comparisons() {
        assert!(lint_sim("fn f(a: u64, b: u64) -> bool { a == b && a != 0 }").is_empty());
        assert!(lint_sim("fn f(s: &str) -> bool { s == \"x\" }").is_empty());
        assert!(lint_sim("fn f(a: u64) -> bool { a == 0x1F }").is_empty(), "hex is integer");
        // An integer suffix contains no exponent, even when it spells `e`.
        let src = "fn f(k: usize) -> bool { let mut n = 0usize; n += k; n == 0 }";
        assert!(lint_sim(src).is_empty(), "`0usize` is not a float literal");
        // Assignment and compound operators are not comparisons.
        assert!(lint_sim("fn f(mut x: f64) { x = 1.0; x += 2.0; }").is_empty());
        assert!(lint_sim("fn f(x: f64) -> bool { x <= 1.0 }").is_empty(), "ordering is fine");
    }

    #[test]
    fn r9_scope_excludes_tests_and_non_sim_crates() {
        let test_code = "#[cfg(test)]\nmod t { fn f(x: f64) -> bool { x == 0.0 } }";
        assert!(lint_sim(test_code).is_empty());
        assert!(lint_core("fn f(x: f64) -> bool { x == 0.0 }").is_empty());
    }

    #[test]
    fn r9_suppression_is_honored() {
        let src = "fn f(x: f64) -> bool { x == 0.0 } // simlint::allow(r9, \"0.0 is a sentinel, never computed\")";
        assert!(lint_sim(src).is_empty());
    }

    // --- cross-cutting ------------------------------------------------------

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r3"]);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_of(&lint_sim(src)), vec!["r3"]);
    }

    #[test]
    fn test_fn_attribute_marks_only_its_body() {
        let src = "#[test]\nfn t() { Some(1).unwrap(); }\n\
                   fn lib(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_sim(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn banned_names_in_strings_and_comments_do_not_fire() {
        let src = "// HashMap unwrap() panic! Instant unsafe as u32\n\
                   fn f() -> &'static str { \"HashMap::new().unwrap() as u32 unsafe\" }";
        assert!(lint_sim(src).is_empty());
    }

    #[test]
    fn findings_are_sorted_and_deduped() {
        let src = "use std::collections::{HashMap, HashSet};\nfn f() { let t = Instant::now(); }";
        let f = lint_sim(src);
        assert_eq!(rules_of(&f), vec!["r1", "r1", "r2"]);
        assert!(f.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn findings_carry_column_and_byte_span() {
        let src = "fn f(x: u64) -> u32 { x as u32 }";
        let f = lint_sim(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].col, 25, "column of the `as` token");
        let (s, e) = f[0].span;
        assert_eq!(&src[s as usize..e as usize], "as");
    }
}
