//! The use-graph pass: where are fields *read*?
//!
//! r7 declares a config field dead when it has zero non-serde, non-test
//! reads anywhere in the workspace. This module collects the read sites.
//! A *read* is:
//!
//! * a field access `expr.name` that is not a method call (`expr.name(`)
//!   and not a plain assignment target (`expr.name = value` — a field
//!   only ever written is still dead as far as simulation results go;
//!   compound assignments like `+=` read first and do count);
//! * a binding introduced by a struct *destructuring pattern* —
//!   `let SimConfig { shards, .. } = cfg` or a `SimConfig { shards, .. }
//!   =>` match arm. Struct *literals* (constructors like
//!   `SimConfig { shards, .. }` in expression position) are writes and
//!   deliberately do not count: every config type has a constructor
//!   naming all its fields, so counting literals would keep everything
//!   alive and r7 would never fire.
//!
//! Excluded regions: `#[cfg(test)]` / `#[test]` bodies, whole
//! `tests/**` files, and the bodies of manual `impl Serialize/Deserialize`
//! blocks (serde-internal traffic is exactly what r7 discounts).
//!
//! Reads are keyed by bare field name. Ranges (`0..n`) and fully-qualified
//! paths can contribute stray names; name collisions across structs merge.
//! Both imprecisions only *add* reads — they can hide a dead field but
//! never flag a live one, the right failure direction for a lint.

use crate::config::FileClass;
use crate::lexer::{Tok, TokKind};
use crate::parse::ParsedFile;
use crate::rules::test_regions;
use std::collections::BTreeSet;

/// Collects the bare names read in one file. `toks` must be the same
/// token stream `parsed` was built from.
pub fn collect_reads(toks: &[Tok], parsed: &ParsedFile, class: FileClass) -> BTreeSet<String> {
    let mut reads = BTreeSet::new();
    if class == FileClass::TestFile {
        return reads;
    }
    let in_test = test_regions(toks);
    let serde_ranges = parsed.serde_impl_ranges();
    let excluded = |ti: usize| -> bool {
        in_test[ti] || serde_ranges.iter().any(|&(s, e)| ti >= s && ti < e)
    };
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();

    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokKind::Ident || excluded(ti) {
            continue;
        }
        // Field access: `. name` with neither a call nor a plain write.
        if ci > 0 && toks[code[ci - 1]].is_punct('.') {
            let next = code.get(ci + 1).map(|&nj| &toks[nj]);
            let is_call = next.is_some_and(|n| n.is_punct('('));
            let is_plain_assign = next.is_some_and(|n| n.is_punct('='))
                && !code.get(ci + 2).is_some_and(|&nj| toks[nj].is_punct('='));
            if !is_call && !is_plain_assign {
                reads.insert(t.text.clone());
            }
            continue;
        }
        // Destructuring pattern: `TypeName { a, b: bound, .. }`.
        if starts_with_uppercase(&t.text)
            && code.get(ci + 1).is_some_and(|&nj| toks[nj].is_punct('{'))
            && is_pattern_position(toks, &code, ci)
        {
            collect_pattern_bindings(toks, &code, ci + 1, &mut reads);
        }
    }
    reads
}

fn starts_with_uppercase(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Is the `TypeName {` at code index `ci` a *pattern* (destructure) rather
/// than a struct literal? True when a `let` sits just before the type path
/// (skipping path segments, `&`, `(` — covers `if let Some(Cfg { .. })`),
/// or when the matching `}` is followed by `=>` (skipping closing parens —
/// a match arm).
fn is_pattern_position(toks: &[Tok], code: &[usize], ci: usize) -> bool {
    // Backward scan for `let`.
    let mut back = ci;
    let mut steps = 0;
    while back > 0 && steps < 8 {
        back -= 1;
        steps += 1;
        let t = &toks[code[back]];
        if t.is_ident("let") {
            return true;
        }
        let transparent = t.is_punct(':')
            || t.is_punct('(')
            || t.is_punct('&')
            || t.kind == TokKind::Ident && (starts_with_uppercase(&t.text) || t.is_ident("ref"));
        if !transparent {
            break;
        }
    }
    // Forward scan: matching `}` then (past any `)`) a `=>`.
    let mut depth = 0usize;
    let mut cj = ci + 1;
    while cj < code.len() {
        let t = &toks[code[cj]];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        cj += 1;
    }
    cj += 1;
    while cj < code.len() && toks[code[cj]].is_punct(')') {
        cj += 1;
    }
    cj + 1 < code.len() && toks[code[cj]].is_punct('=') && toks[code[cj + 1]].is_punct('>')
}

/// Collects field names from the pattern body whose `{` is at code index
/// `open`. In a pattern, both `name` (shorthand) and `name: binding` read
/// the field `name`; `..` and nested patterns resynchronize at commas.
fn collect_pattern_bindings(
    toks: &[Tok],
    code: &[usize],
    open: usize,
    reads: &mut BTreeSet<String>,
) {
    let mut depth = 0usize;
    let mut cj = open;
    let mut at_entry_start = false;
    while cj < code.len() {
        let t = &toks[code[cj]];
        if t.is_punct('{') {
            depth += 1;
            if depth == 1 {
                at_entry_start = true;
            }
        } else if t.is_punct('}') {
            if depth == 1 {
                return;
            }
            depth -= 1;
        } else if depth == 1 {
            if t.is_punct(',') {
                at_entry_start = true;
            } else if at_entry_start {
                if t.is_ident("ref") || t.is_ident("mut") {
                    // stay at entry start for the name that follows
                } else {
                    if t.kind == TokKind::Ident {
                        reads.insert(t.text.clone());
                    }
                    at_entry_start = false;
                }
            }
        }
        cj += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn reads(src: &str) -> BTreeSet<String> {
        let toks = lex(src);
        let parsed = parse_file(&toks);
        collect_reads(&toks, &parsed, FileClass::Lib)
    }

    fn has(set: &BTreeSet<String>, name: &str) -> bool {
        set.contains(name)
    }

    #[test]
    fn field_access_counts_method_call_does_not() {
        let r = reads("fn f(c: &Cfg) -> u64 { c.shards + c.compute() }");
        assert!(has(&r, "shards"));
        assert!(!has(&r, "compute"));
    }

    #[test]
    fn plain_assignment_is_a_write_compound_is_a_read() {
        let r = reads("fn f(c: &mut Cfg) { c.dead = 4; c.live += 1; }");
        assert!(!has(&r, "dead"), "plain write only");
        assert!(has(&r, "live"), "+= reads first");
        // Comparison is a read even though `=` follows the field.
        let r = reads("fn g(c: &Cfg) -> bool { c.flag == 1 }");
        assert!(has(&r, "flag"));
    }

    #[test]
    fn struct_literals_do_not_count_patterns_do() {
        let ctor = reads("fn ctor() -> Cfg { Cfg { shards: 1, util } }");
        assert!(!has(&ctor, "shards"), "constructor writes, not reads");
        assert!(!has(&ctor, "util"), "shorthand literal writes, not reads");
        let pat = reads("fn f(c: Cfg) { let Cfg { shards, util: u, .. } = c; }");
        assert!(has(&pat, "shards"));
        assert!(has(&pat, "util"), "`field: binding` reads `field`");
        assert!(!has(&pat, "u"), "the binding name is not the field");
    }

    #[test]
    fn match_arm_patterns_count() {
        let r = reads(
            "fn f(p: Policy) -> u64 { match p { Policy::Fixed(FixedConfig { size, .. }) => size, _ => 0 } }",
        );
        assert!(has(&r, "size"));
    }

    #[test]
    fn functional_update_base_is_not_a_field_read() {
        let r = reads("fn f(base: Cfg) -> Cfg { Cfg { shards: 2, ..base } }");
        assert!(!has(&r, "shards"));
    }

    #[test]
    fn test_regions_and_test_files_are_excluded() {
        let r = reads("#[cfg(test)]\nmod t { fn f(c: &Cfg) -> u64 { c.shards } }");
        assert!(!has(&r, "shards"));
        let toks = lex("fn f(c: &Cfg) -> u64 { c.shards }");
        let parsed = parse_file(&toks);
        assert!(collect_reads(&toks, &parsed, FileClass::TestFile).is_empty());
    }

    #[test]
    fn manual_serde_impls_are_excluded() {
        let src = "impl Serialize for Cfg { fn serialize(&self) -> u64 { self.shards } }\n\
                   impl Display for Cfg { fn fmt(&self) -> u64 { self.util } }";
        let r = reads(src);
        assert!(!has(&r, "shards"), "serde impl body is serde traffic");
        assert!(has(&r, "util"), "other impls count normally");
    }
}
