//! A tiny scriptable shell over the simulated file system — poke at any
//! policy × array combination interactively or from a pipe.
//!
//! ```text
//! cargo run --release --example fs_shell
//! echo "mkdir /a\ncreate /a/x\nwrite /a/x 65536\nstat /a/x\ndf" | cargo run --release --example fs_shell
//! ```
//!
//! Commands:
//!   mkdir PATH | create PATH | write PATH BYTES | read PATH BYTES
//!   stat PATH | ls PATH | rm PATH | mv FROM TO | truncate PATH BYTES
//!   df | defrag | clock | help | quit

use readopt::alloc::PolicyConfig;
use readopt::disk::ArrayConfig;
use readopt::fs::{FileSystem, FsConfig, FsError};
use std::io::BufRead;

fn io_file(fs: &mut FileSystem, path: &str, bytes: u64, write: bool) -> Result<String, FsError> {
    let fd = fs.open(path)?;
    let report = if write {
        let size = fs.stat(path)?.size_bytes;
        fs.seek(fd, size)?;
        fs.write(fd, bytes)?
    } else {
        fs.read(fd, bytes)?
    };
    fs.close(fd)?;
    Ok(format!(
        "{} {} bytes in {:.2} ms ({} from cache)",
        if write { "wrote" } else { "read" },
        report.bytes,
        report.latency_ms(),
        report.cache_hit_bytes
    ))
}

fn execute(fs: &mut FileSystem, line: &str) -> Result<String, String> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    let num = |i: usize| -> Result<u64, String> {
        parts
            .get(i)
            .ok_or("missing argument".to_string())?
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    };
    let path = |i: usize| -> Result<&str, String> {
        parts.get(i).copied().ok_or("missing path".to_string())
    };
    let err = |e: FsError| e.to_string();
    match parts.first().copied() {
        None => Ok(String::new()),
        Some("help") => Ok("mkdir create write read stat ls rm mv truncate df defrag clock quit".into()),
        Some("mkdir") => fs.mkdir(path(1)?).map(|_| "ok".into()).map_err(err),
        Some("create") => fs.create(path(1)?).and_then(|fd| fs.close(fd)).map(|_| "ok".into()).map_err(err),
        Some("write") => io_file(fs, path(1)?, num(2)?, true).map_err(err),
        Some("read") => io_file(fs, path(1)?, num(2)?, false).map_err(err),
        Some("stat") => fs
            .stat(path(1)?)
            .map(|m| {
                format!(
                    "size {} allocated {} extents {}{}",
                    m.size_bytes,
                    m.allocated_bytes,
                    m.extents,
                    if m.is_dir { " (dir)" } else { "" }
                )
            })
            .map_err(err),
        Some("ls") => fs.readdir(path(1).unwrap_or("/")).map(|names| names.join("  ")).map_err(err),
        Some("rm") => fs.unlink(path(1)?).map(|_| "ok".into()).map_err(err),
        Some("mv") => fs.rename(path(1)?, path(2)?).map(|_| "ok".into()).map_err(err),
        Some("truncate") => fs.truncate(path(1)?, num(2)?).map(|_| "ok".into()).map_err(err),
        Some("df") => {
            let s = fs.statfs();
            Ok(format!(
                "{} / {} bytes used ({:.1} %), {} files, cache hit {:.1} %",
                s.capacity_bytes - s.free_bytes,
                s.capacity_bytes,
                100.0 * s.utilization,
                s.files,
                100.0 * s.cache.hit_ratio()
            ))
        }
        Some("defrag") => Ok(match fs.defragment() {
            Some(moved) => format!("rewrote {moved} units"),
            None => "this policy has no reallocator".into(),
        }),
        Some("clock") => Ok(format!("{:.2} ms simulated", fs.now().as_ms())),
        Some(other) => Err(format!("unknown command {other} (try `help`)")),
    }
}

fn main() {
    let mut fs = FileSystem::format(FsConfig {
        array: ArrayConfig::scaled(16),
        policy: PolicyConfig::paper_buddy(),
        cache: None,
        seed: 11,
    });
    println!(
        "readopt fs shell — buddy policy on a {:.2} GB array; `help` lists commands",
        fs.statfs().capacity_bytes as f64 / 1e9
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == "quit" {
            break;
        }
        match execute(&mut fs, &line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
