//! §6's closing wish — "applying the allocation policies to genuine
//! workloads" — via the trace facility: one recorded operation stream
//! replayed against every §5 policy (plus the FFS extension), costs
//! compared end to end.
//!
//! The built-in trace imitates a database maintenance window: bulk-load a
//! table, random page updates, a log that grows and gets truncated, a full
//! table scan. Swap in your own JSON trace with:
//!
//! ```text
//! cargo run --release --example trace_replay -- my_trace.json
//! ```

use readopt::alloc::{ExtentConfig, FitStrategy, PolicyConfig};
use readopt::disk::ArrayConfig;
use readopt::fs::{FileSystem, FsConfig, Trace, TraceOp};

fn maintenance_window_trace() -> Trace {
    let mut ops = vec![
        TraceOp::Mkdir { path: "/db".into() },
        TraceOp::Create { path: "/db/table".into(), slot: 0 },
        TraceOp::Create { path: "/db/log".into(), slot: 1 },
    ];
    // Bulk load: 8 MB of table in 64 KB batches, log record per batch.
    for _ in 0..128 {
        ops.push(TraceOp::Write { slot: 0, bytes: 64 * 1024 });
        ops.push(TraceOp::Write { slot: 1, bytes: 4 * 1024 });
    }
    // Random page updates: seek + 8 KB write + log append + think.
    for i in 0..200u64 {
        let page = (i * 2_654_435_761) % (8 * 1024 * 1024 / 8192);
        ops.push(TraceOp::Seek { slot: 0, pos: page * 8192 });
        ops.push(TraceOp::Write { slot: 0, bytes: 8192 });
        ops.push(TraceOp::Write { slot: 1, bytes: 4096 });
        ops.push(TraceOp::ThinkMs { ms: 2.0 });
    }
    // Checkpoint: truncate the log.
    ops.push(TraceOp::Truncate { path: "/db/log".into(), size: 0 });
    // Full table scan.
    ops.push(TraceOp::Seek { slot: 0, pos: 0 });
    for _ in 0..128 {
        ops.push(TraceOp::Read { slot: 0, bytes: 64 * 1024 });
    }
    ops.push(TraceOp::Close { slot: 0 });
    ops.push(TraceOp::Close { slot: 1 });
    Trace { ops }
}

fn main() {
    let trace = match std::env::args().nth(1) {
        Some(path) => {
            let json = std::fs::read_to_string(&path).expect("read trace file");
            Trace::from_json(&json).expect("parse trace")
        }
        None => maintenance_window_trace(),
    };
    println!("replaying {} operations against each policy:\n", trace.ops.len());
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>9}",
        "policy", "elapsed ms", "MB written", "MB read", "failures"
    );
    let policies = [
        ("buddy".to_string(), PolicyConfig::paper_buddy()),
        ("restricted-buddy".to_string(), PolicyConfig::paper_restricted()),
        (
            "extent first-fit".to_string(),
            PolicyConfig::Extent(ExtentConfig {
                range_means_bytes: vec![64 * 1024, 1024 * 1024],
                fit: FitStrategy::FirstFit,
                sigma_frac: 0.1,
            }),
        ),
        ("ffs 8K/1K".to_string(), PolicyConfig::ffs_classic()),
        (
            "fixed-4K (aged)".to_string(),
            PolicyConfig::Fixed(readopt::alloc::FixedConfig { block_bytes: 4096, pre_age: true }),
        ),
    ];
    for (name, policy) in policies {
        let mut fs = FileSystem::format(FsConfig {
            array: ArrayConfig::scaled(16),
            policy,
            cache: None,
            seed: 9,
        });
        let report = trace.replay(&mut fs);
        println!(
            "{:<22} {:>12.1} {:>12.2} {:>12.2} {:>9}",
            name,
            report.elapsed_ms,
            report.bytes_written as f64 / 1048576.0,
            report.bytes_read as f64 / 1048576.0,
            report.failures
        );
    }
    println!("\n(the read-optimized layouts win on the bulk load and the scan;\n the aged fixed-block system pays a seek per 4 KB block)");
}
