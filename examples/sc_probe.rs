use readopt::experiments::ExperimentContext;
use readopt::sim::Simulation;
use readopt_alloc::PolicyConfig;
use readopt_workloads::WorkloadKind;

fn main() {
    let ctx = ExperimentContext::full();
    for (ul, um, us, think) in [
        (2u32, 5u32, 3u32, 25.0f64),
        (4, 10, 6, 25.0),
        (3, 8, 4, 10.0),
        (2, 5, 3, 5.0),
        (4, 10, 6, 5.0),
        (8, 16, 8, 10.0),
    ] {
        let mut cfg = ctx.sim_config(WorkloadKind::Supercomputer, PolicyConfig::paper_buddy());
        cfg.file_types[0].num_users = ul;
        cfg.file_types[1].num_users = um;
        cfg.file_types[2].num_users = us;
        for t in &mut cfg.file_types {
            t.process_time_ms = think;
        }
        let mut sim = Simulation::new(&cfg, ctx.seed.wrapping_add(1));
        let app = sim.run_application_test();
        let c = sim.storage().stats().combined();
        println!(
            "users=({ul},{um},{us}) think={think}: app {:.1}%  busy/disk {:.2}  seek/req {:.1}ms xfer/req {:.1}ms",
            app.throughput_pct,
            c.busy_ms / 8.0 / app.measured_ms,
            c.seek_ms / c.requests as f64,
            c.transfer_ms / c.requests as f64
        );
    }
}
