//! Defining a workload of your own: a mail-server-ish mix (many tiny
//! messages, a few large mailbox files, heavy create/delete churn) run
//! against two candidate policies.
//!
//! Demonstrates the full Table 2 parameter surface of
//! [`readopt::sim::FileTypeConfig`].
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use readopt::alloc::{ExtentConfig, FitStrategy, PolicyConfig, RestrictedConfig};
use readopt::disk::ArrayConfig;
use readopt::sim::{FileTypeConfig, SimConfig, Simulation};

fn mail_server(capacity_bytes: u64) -> Vec<FileTypeConfig> {
    const KB: u64 = 1024;
    let message_count = (capacity_bytes as f64 * 0.30 / (2.0 * KB as f64)) as u64;
    let mailbox_count = (capacity_bytes as f64 * 0.55 / (512.0 * KB as f64)).max(4.0) as u64;
    vec![
        FileTypeConfig {
            name: "message".into(),
            num_files: message_count,
            num_users: 24,
            process_time_ms: 40.0,
            hit_frequency_ms: 20.0,
            rw_size_bytes: 2 * KB,
            rw_deviation_bytes: KB,
            allocation_size_bytes: KB,
            truncate_size_bytes: KB,
            initial_size_bytes: 2 * KB,
            initial_deviation_bytes: KB,
            read_pct: 55.0,
            write_pct: 5.0,
            extend_pct: 20.0,
            deallocate_pct: 20.0,
            delete_fraction: 0.9, // messages die whole
            sequential_access: false,
            page_aligned: false,
        },
        FileTypeConfig {
            name: "mailbox".into(),
            num_files: mailbox_count,
            num_users: 8,
            process_time_ms: 60.0,
            hit_frequency_ms: 30.0,
            rw_size_bytes: 16 * KB,
            rw_deviation_bytes: 4 * KB,
            allocation_size_bytes: 64 * KB,
            truncate_size_bytes: 16 * KB,
            initial_size_bytes: 512 * KB,
            initial_deviation_bytes: 128 * KB,
            read_pct: 60.0,
            write_pct: 10.0,
            extend_pct: 25.0, // appends dominate mailbox mutation
            deallocate_pct: 5.0,
            delete_fraction: 0.0, // mailboxes get compacted, not deleted
            sequential_access: true,
            page_aligned: false,
        },
    ]
}

fn main() {
    let array = ArrayConfig::scaled(16);
    let workload = mail_server(array.capacity_bytes());
    let candidates = [
        (
            "restricted buddy (2 sizes, g=2)",
            PolicyConfig::Restricted(RestrictedConfig::sweep_point(2, 2, true)),
        ),
        (
            "extent first-fit (1K/64K)",
            PolicyConfig::Extent(ExtentConfig {
                range_means_bytes: vec![1024, 64 * 1024],
                fit: FitStrategy::FirstFit,
                sigma_frac: 0.1,
            }),
        ),
    ];
    println!("mail-server workload on a {:.2} GB array\n", array.capacity_bytes() as f64 / 1e9);
    println!("{:<34} {:>9} {:>9} {:>8} {:>8}", "policy", "int.frag", "ext.frag", "app%", "seq%");
    for (name, policy) in candidates {
        let cfg = SimConfig::new(array, policy, workload.clone());
        let frag = Simulation::new(&cfg, 7).run_allocation_test();
        let mut sim = Simulation::new(&cfg, 8);
        let app = sim.run_application_test();
        let seq = sim.run_sequential_test();
        println!(
            "{:<34} {:>8.1}% {:>8.1}% {:>7.1}% {:>7.1}%",
            name, frag.internal_pct, frag.external_pct, app.throughput_pct, seq.throughput_pct
        );
    }
}
