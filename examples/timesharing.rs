//! The time-sharing (TS) workload of §2.2 run against all four §5 policy
//! selections — a one-workload slice of Figure 6.
//!
//! ```text
//! cargo run --release --example timesharing [-- <scale-divisor>]
//! ```

use readopt::experiments::fig6::policies_for;
use readopt::experiments::ExperimentContext;
use readopt_workloads::WorkloadKind;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let ctx = if scale <= 1 { ExperimentContext::full() } else { ExperimentContext::fast(scale) };
    let wl = WorkloadKind::Timesharing;
    println!(
        "TS workload on {} disks / {:.2} GB (scale 1/{scale})\n",
        ctx.array.ndisks,
        ctx.array.capacity_bytes() as f64 / 1e9
    );
    println!("{:<20} {:>12} {:>12} {:>11} {:>11}", "policy", "internal%", "external%", "app%", "seq%");
    for (name, policy) in policies_for(&ctx, wl) {
        let frag = ctx.run_allocation(wl, policy.clone());
        let (app, seq) = ctx.run_performance(wl, policy);
        println!(
            "{:<20} {:>12.1} {:>12.1} {:>11.1} {:>11.1}",
            name, frag.internal_pct, frag.external_pct, app.throughput_pct, seq.throughput_pct
        );
    }
    println!(
        "\nThe paper's TS story: no policy pushes the array past ~20 % (small\n\
         files bound everything on seeks), but the multiblock policies cost\n\
         nothing for that flexibility — and the aged fixed-block system\n\
         scatters even these small files."
    );
}
