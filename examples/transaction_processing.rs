//! The transaction-processing (TP) workload of §2.2: 10 large relations
//! under random 8 KB page I/O plus append-mostly logs.
//!
//! Reproduces the TP slice of Figure 6 and demonstrates the §6 prediction
//! about RAID small-write cost.
//!
//! ```text
//! cargo run --release --example transaction_processing [-- <scale-divisor>]
//! ```

use readopt::disk::ArrayLayout;
use readopt::experiments::fig6::policies_for;
use readopt::experiments::ExperimentContext;
use readopt_alloc::FitStrategy;
use readopt_sim::Simulation;
use readopt_workloads::WorkloadKind;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let ctx = if scale <= 1 { ExperimentContext::full() } else { ExperimentContext::fast(scale) };
    let wl = WorkloadKind::TransactionProcessing;
    println!(
        "TP workload on {} disks / {:.2} GB (scale 1/{scale})\n",
        ctx.array.ndisks,
        ctx.array.capacity_bytes() as f64 / 1e9
    );

    println!(
        "{:<20} {:>9} {:>9} {:>12} {:>12}",
        "policy", "app%", "seq%", "p50 op ms", "p99 op ms"
    );
    for (name, policy) in policies_for(&ctx, wl) {
        let (app, seq) = ctx.run_performance(wl, policy);
        println!(
            "{:<20} {:>9.1} {:>9.1} {:>12.1} {:>12.1}",
            name, app.throughput_pct, seq.throughput_pct, app.op_latency_p50_ms, app.op_latency_p99_ms
        );
    }

    // §6: "the impact of a RAID in the underlying disk system will reduce
    // the small write performance."
    println!("\nTP under redundancy layouts (extent policy, absolute MB/s):");
    println!("{:<16} {:>10} {:>11}", "layout", "app MB/s", "write amp");
    for layout in [ArrayLayout::Striped, ArrayLayout::Raid5, ArrayLayout::Mirrored] {
        let mut lctx = ctx;
        lctx.array.layout = layout;
        let policy = lctx.extent_policy(wl, 3, FitStrategy::FirstFit);
        let cfg = lctx.sim_config(wl, policy);
        let mut sim = Simulation::new(&cfg, lctx.seed);
        let app = sim.run_application_test();
        let amp = sim.storage().stats().write_amplification();
        println!("{:<16} {:>10.2} {:>10.2}x", format!("{layout:?}"), app.throughput_mb_s, amp);
    }
}
