//! The supercomputer (SC) workload of §2.2: one 500 MB file, fifteen
//! 100 MB files, ten 10 MB files, all accessed in large contiguous bursts.
//!
//! This is the workload where read-optimized allocation pays off most —
//! the paper reports ≥88 % of the array's bandwidth under buddy allocation
//! (Table 3). The example also shows the per-disk utilization breakdown the
//! striping is supposed to produce.
//!
//! ```text
//! cargo run --release --example supercomputer [-- <scale-divisor>]
//! ```

use readopt::experiments::fig6::policies_for;
use readopt::experiments::ExperimentContext;
use readopt_sim::Simulation;
use readopt_workloads::WorkloadKind;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let ctx = if scale <= 1 { ExperimentContext::full() } else { ExperimentContext::fast(scale) };
    let wl = WorkloadKind::Supercomputer;
    println!(
        "SC workload on {} disks / {:.2} GB (scale 1/{scale})\n",
        ctx.array.ndisks,
        ctx.array.capacity_bytes() as f64 / 1e9
    );

    println!("{:<20} {:>11} {:>11}", "policy", "app%", "seq%");
    for (name, policy) in policies_for(&ctx, wl) {
        let (app, seq) = ctx.run_performance(wl, policy);
        println!("{:<20} {:>11.1} {:>11.1}", name, app.throughput_pct, seq.throughput_pct);
    }

    // Show that large contiguous allocation really does engage every
    // spindle: per-disk transfer shares under the buddy policy.
    let cfg = ctx.sim_config(wl, readopt_alloc::PolicyConfig::paper_buddy());
    let mut sim = Simulation::new(&cfg, ctx.seed);
    let _ = sim.run_sequential_test();
    let stats = sim.storage().stats();
    let total: u64 = stats.per_disk.iter().map(|d| d.bytes_total()).sum();
    println!("\nper-disk share of bytes moved (sequential test, buddy policy):");
    for (i, d) in stats.per_disk.iter().enumerate() {
        let share = 100.0 * d.bytes_total() as f64 / total.max(1) as f64;
        let eff = 100.0 * d.transfer_efficiency();
        println!("  disk {i}: {share:>5.1} % of bytes, {eff:>5.1} % of busy time transferring");
    }
}
