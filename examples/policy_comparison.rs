//! A miniature Figure 6: all four policies across all three workloads,
//! with the paper's numbers printed alongside for comparison.
//!
//! ```text
//! cargo run --release --example policy_comparison [-- <scale-divisor>]
//! ```

use readopt::experiments::{fig6, ExperimentContext};

/// The paper's Figure 6 values are bar charts, not tables; Table 3 gives
/// buddy exactly and §5 narrates the rest. These are the reference points
/// we can anchor on.
const PAPER_ANCHORS: &[(&str, &str, f64, f64)] = &[
    // (workload, policy, sequential, application)
    ("SC", "buddy", 94.4, 88.0),
    ("TP", "buddy", 93.9, 27.7),
    ("TS", "buddy", 12.0, 8.4),
];

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let ctx = if scale <= 1 { ExperimentContext::full() } else { ExperimentContext::fast(scale) };
    let result = fig6::run(&ctx);
    println!("{result}");
    println!("paper anchor points (Table 3 buddy rows):");
    for &(wl, policy, seq, app) in PAPER_ANCHORS {
        let ours = result.cell(wl, policy).expect("cell exists");
        println!(
            "  {wl}/{policy}: paper seq {seq:.1} % vs ours {:.1} %; paper app {app:.1} % vs ours {:.1} %",
            ours.sequential_pct, ours.application_pct
        );
    }
}
