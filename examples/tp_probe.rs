use readopt::experiments::ExperimentContext;
use readopt::sim::Simulation;
use readopt_alloc::FitStrategy;
use readopt_workloads::WorkloadKind;

fn main() {
    let ctx = ExperimentContext::full();
    let wl = WorkloadKind::TransactionProcessing;
    let policy = ctx.extent_policy(wl, 3, FitStrategy::FirstFit);
    let cfg = ctx.sim_config(wl, policy);
    let mut sim = Simulation::new(&cfg, ctx.seed.wrapping_add(1));
    let app = sim.run_application_test();
    println!("app {:.1}% ({:.2} MB/s), ops {}", app.throughput_pct, app.throughput_mb_s, app.operations);
    let stats = sim.storage().stats();
    let c = stats.combined();
    println!("requests={} seeks={} seek_ms/req={:.2} rot_ms/req={:.2} xfer_ms/req={:.2}",
        c.requests, c.seeks, c.seek_ms / c.requests as f64,
        c.rotational_ms / c.requests as f64, c.transfer_ms / c.requests as f64);
    println!("busy fraction per disk ≈ {:.2}", c.busy_ms / 8.0 / app.measured_ms);
    println!("avg req bytes = {}", c.bytes_total() / c.requests);
}
