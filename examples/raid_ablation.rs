//! §6 future work, implemented: "the impact of a RAID in the underlying
//! disk system will reduce the small write performance."
//!
//! Runs the TP workload (small random writes against big relations) under
//! all four §2.1 disk configurations and prints both relative and absolute
//! throughput plus the observed write amplification.
//!
//! ```text
//! cargo run --release --example raid_ablation [-- <scale-divisor>]
//! ```

use readopt::experiments::{ablations, ExperimentContext};

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let ctx = if scale <= 1 { ExperimentContext::full() } else { ExperimentContext::fast(scale) };
    let result = ablations::run_raid(&ctx);
    println!("{result}");
    println!(
        "Read MB/s, not %max, is the honest cross-layout comparison: each\n\
         layout is normalized to its own calibrated maximum. RAID-5's\n\
         read-modify-write pays two extra disk operations per small write,\n\
         which is exactly the §6 caveat about parity in the disk system."
    );
}
