//! Driving the simulated file system directly: a small build-system-like
//! session (sources, objects, a big archive) on a restricted-buddy volume,
//! with and without a buffer cache, plus a Koch defragmentation pass on a
//! buddy volume.
//!
//! ```text
//! cargo run --release --example filesystem
//! ```

use readopt::alloc::PolicyConfig;
use readopt::disk::ArrayConfig;
use readopt::fs::{CacheConfig, FileSystem, FsConfig};

fn session(cache: Option<CacheConfig>) -> (f64, f64) {
    let mut fs = FileSystem::format(FsConfig {
        array: ArrayConfig::scaled(16),
        policy: PolicyConfig::paper_restricted(),
        cache,
        seed: 42,
    });
    fs.mkdir("/src").unwrap();
    fs.mkdir("/obj").unwrap();

    // Write 64 source files (~6 KB each).
    for i in 0..64 {
        let fd = fs.create(&format!("/src/mod{i}.rs")).unwrap();
        fs.write(fd, 6 * 1024).unwrap();
        fs.close(fd).unwrap();
    }
    // "Compile": read each source twice (parse + codegen), write an object.
    let mut read_ms = 0.0;
    for i in 0..64 {
        let fd = fs.open(&format!("/src/mod{i}.rs")).unwrap();
        read_ms += fs.read(fd, 6 * 1024).unwrap().latency_ms();
        fs.seek(fd, 0).unwrap();
        read_ms += fs.read(fd, 6 * 1024).unwrap().latency_ms();
        fs.close(fd).unwrap();
        let fd = fs.create(&format!("/obj/mod{i}.o")).unwrap();
        fs.write(fd, 18 * 1024).unwrap();
        fs.close(fd).unwrap();
    }
    // "Link": stream every object into one archive.
    let out = fs.create("/obj/program").unwrap();
    let mut link_ms = 0.0;
    for i in 0..64 {
        let fd = fs.open(&format!("/obj/mod{i}.o")).unwrap();
        link_ms += fs.read(fd, 18 * 1024).unwrap().latency_ms();
        fs.close(fd).unwrap();
        link_ms += fs.write(out, 18 * 1024).unwrap().latency_ms();
    }
    let stats = fs.statfs();
    println!(
        "  cache hit ratio {:>5.1} %  |  files {}  |  utilization {:>4.1} %",
        100.0 * stats.cache.hit_ratio(),
        stats.files,
        100.0 * stats.utilization
    );
    (read_ms, link_ms)
}

fn main() {
    println!("compile-and-link session, no cache:");
    let (r0, l0) = session(None);
    println!("  compile reads {r0:.1} ms, link {l0:.1} ms of simulated disk time\n");

    println!("same session, 8 MB buffer cache:");
    let (r1, l1) = session(Some(CacheConfig::default()));
    println!("  compile reads {r1:.1} ms, link {l1:.1} ms of simulated disk time\n");
    if r1 == 0.0 {
        println!(
            "the cache fully absorbs the compile reads (sources were just written)\nand speeds the link {:.1}×\n",
            l0 / l1.max(0.001)
        );
    } else {
        println!(
            "the cache speeds compile reads {:.1}× and the link {:.1}×\n",
            r0 / r1,
            l0 / l1.max(0.001)
        );
    }

    // Koch's nightly defragmenter on an interleaved buddy volume.
    let mut fs = FileSystem::format(FsConfig {
        array: ArrayConfig::scaled(16),
        policy: PolicyConfig::paper_buddy(),
        cache: None,
        seed: 42,
    });
    let a = fs.create("/a.db").unwrap();
    let b = fs.create("/b.db").unwrap();
    for _ in 0..12 {
        fs.write(a, 100 * 1024).unwrap();
        fs.write(b, 100 * 1024).unwrap();
    }
    let before = fs.stat("/a.db").unwrap();
    let moved = fs.defragment().expect("buddy volume supports defrag");
    let after = fs.stat("/a.db").unwrap();
    println!("nightly defragmentation (buddy volume):");
    println!(
        "  /a.db: {} -> {} extents, {} -> {} KB allocated ({} KB rewritten volume-wide)",
        before.extents,
        after.extents,
        before.allocated_bytes / 1024,
        after.allocated_bytes / 1024,
        moved
    );
}
