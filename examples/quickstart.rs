//! Quickstart: build a disk array, pick an allocation policy, run one
//! workload through the paper's evaluation suite.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use readopt::alloc::{ExtentConfig, FitStrategy, PolicyConfig};
use readopt::disk::ArrayConfig;
use readopt::sim::{SimConfig, Simulation};
use readopt::workloads::timesharing;

fn main() {
    // The paper's 8-disk, 2.8 GB CDC Wren IV array — scaled down 16× so
    // this example runs in well under a second. Drop `scaled` for the full
    // Table 1 system.
    let array = ArrayConfig::scaled(16);

    // An extent-based policy (§4.3) with ranges sized for the
    // timesharing workload's small files: 1 KB extents for the 8 KB files,
    // 8 KB extents for the 96 KB files, 64 KB for anything that grows big.
    // (`ExperimentContext::extent_policy` builds the paper's sweeps.)
    let policy = PolicyConfig::Extent(ExtentConfig {
        range_means_bytes: vec![1024, 8 * 1024, 64 * 1024],
        fit: FitStrategy::FirstFit,
        sigma_frac: 0.1,
    });

    // The §2.2 time-sharing workload, sized to the array.
    let workload = timesharing(array.capacity_bytes());

    let config = SimConfig::new(array, policy, workload);

    // 1. Allocation test: run extends/truncates/deletes/creates until the
    //    first allocation fails, then measure fragmentation.
    let mut sim = Simulation::new(&config, 42);
    let frag = sim.run_allocation_test();
    println!("allocation test ({} ops):", frag.operations);
    println!("  internal fragmentation: {:>6.2} % of allocated space", frag.internal_pct);
    println!("  external fragmentation: {:>6.2} % of total space", frag.external_pct);
    println!("  utilization at failure: {:>6.2} %", 100.0 * frag.utilization);

    // 2. Application + sequential performance tests on a fresh simulation
    //    (the allocation test deliberately fills the disk).
    let mut sim = Simulation::new(&config, 43);
    let app = sim.run_application_test();
    let seq = sim.run_sequential_test();
    println!("\nperformance (max = {:.2} MB/s sustained sequential):", app.max_bandwidth_mb_s);
    println!(
        "  application: {:>6.2} % of max ({:.2} MB/s), stabilized: {}",
        app.throughput_pct, app.throughput_mb_s, app.stabilized
    );
    println!(
        "  sequential:  {:>6.2} % of max ({:.2} MB/s), stabilized: {}",
        seq.throughput_pct, seq.throughput_mb_s, seq.stabilized
    );
}
