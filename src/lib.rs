//! # readopt — Read Optimized File System Designs, reproduced
//!
//! A full Rust reproduction of Seltzer & Stonebraker, *"Read Optimized File
//! System Designs: A Performance Evaluation"* (ICDE 1991 / UCB ERL M92/64):
//! an event-driven, stochastic workload simulator comparing disk-allocation
//! policies — binary buddy, restricted buddy, and extent-based, against
//! fixed-block baselines — on a striped disk array.
//!
//! This crate is a facade that re-exports the workspace's sub-crates:
//!
//! * [`disk`] — disk mechanics, striped/mirrored/RAID-5/parity-striped arrays
//! * [`alloc`] — the four allocation-policy families
//! * [`sim`] — the event-driven simulation engine and test drivers
//! * [`workloads`] — the paper's TS / TP / SC workload definitions
//! * [`experiments`] — drivers reproducing every table and figure
//! * [`dist`] — coordinator/worker process distribution for the sweeps
//! * [`fs`] — a POSIX-style simulated file system over the same substrate
//!
//! ## Quickstart
//!
//! ```
//! use readopt::disk::ArrayConfig;
//! use readopt::sim::{Simulation, SimConfig};
//! use readopt::alloc::PolicyConfig;
//! use readopt::workloads::timesharing;
//!
//! // A scaled-down version of the paper's 8-disk array (fast to simulate).
//! let array = ArrayConfig::scaled(64);
//! let workload = timesharing(array.capacity_bytes());
//! let config = SimConfig::new(array, PolicyConfig::paper_restricted(), workload);
//! let mut sim = Simulation::new(&config, 42);
//! let frag = sim.run_allocation_test();
//! assert!(frag.utilization > 0.9, "allocation test fills the disk");
//! assert!(frag.external_pct < 10.0);
//! ```

#![forbid(unsafe_code)]

pub use readopt_alloc as alloc;
pub use readopt_core as experiments;
pub use readopt_disk as disk;
pub use readopt_dist as dist;
pub use readopt_fs as fs;
pub use readopt_sim as sim;
pub use readopt_workloads as workloads;
